"""Structural interning of symbolic expressions and path payloads.

Symbolic paths produced by branching exploration frequently contain *equal
but distinct* sub-expressions: symmetric branches rebuild the same guard and
score values independently, so a 50k-path workload carries the same
``add(α₀, α₁)``-shaped trees thousands of times.  ``pickle`` deduplicates by
object *identity*, not by value — every duplicate is re-serialised in full
when a chunk of paths is shipped to a process worker.

Interning rewrites a batch of paths so that structurally equal expressions
become the *same object*: duplicate subtrees then pickle as one definition
plus back-references, which shrinks process-pool chunk payloads and the time
spent serialising them.  Interning never changes values — all symbolic
expression nodes are immutable frozen dataclasses, so sharing is safe — and
it is a no-op on payloads that are already maximally shared.

The memo is keyed by the expressions themselves (structural equality/hash of
the frozen dataclasses), so one memo can be reused across every chunk of a
query to amortise the walk.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, Optional

from .paths import SymConstraint, SymbolicPath
from .value import SPrim, SymExpr

__all__ = [
    "PathInterner",
    "fingerprint_term",
    "intern_expr",
    "intern_constraint",
    "intern_path",
    "intern_paths",
]


_DOUBLE = struct.Struct("<d")


def fingerprint_term(term) -> str:
    """A stable hexadecimal digest of an SPCF term's structure.

    The canonical **program hash** of the service tier: two terms have equal
    fingerprints iff they are structurally equal (same constructors, same
    variable names, same constants bit-for-bit, same primitive ops and
    distribution annotations), so parsing the same program text always lands
    on the same digest — across processes, sessions and hosts.  The walk is
    iterative (pre-order with explicit arity framing), so deeply nested
    programs never hit the recursion limit, and every float is folded in as
    its IEEE-754 bytes, so ``0.1`` and ``0.1 + 1e-17`` never collide by
    formatting.

    The digest is purely structural — alpha-equivalent programs with
    different bound-variable names hash differently (a conservative cache
    key: distinct digests can only cost a cache miss, never a wrong hit).
    """
    from ..lang.ast import (
        App,
        Const,
        Fix,
        If,
        IntervalConst,
        Lam,
        Prim,
        Sample,
        Score,
        Term,
        Var,
    )

    if not isinstance(term, Term):
        raise TypeError(f"fingerprint_term expects an SPCF Term, got {type(term).__name__}")
    digest = hashlib.blake2b(digest_size=16)
    update = digest.update
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            update(b"V")
            update(node.name.encode())
        elif isinstance(node, Const):
            update(b"C")
            update(_DOUBLE.pack(node.value))
        elif isinstance(node, IntervalConst):
            update(b"I")
            update(_DOUBLE.pack(node.interval.lo))
            update(_DOUBLE.pack(node.interval.hi))
        elif isinstance(node, Lam):
            update(b"L")
            update(node.param.encode())
            stack.append(node.body)
        elif isinstance(node, Fix):
            update(b"F")
            update(node.fname.encode())
            update(b"\x00")
            update(node.param.encode())
            stack.append(node.body)
        elif isinstance(node, App):
            update(b"A")
            stack.append(node.arg)
            stack.append(node.func)
        elif isinstance(node, If):
            update(b"?")
            stack.append(node.orelse)
            stack.append(node.then)
            stack.append(node.cond)
        elif isinstance(node, Prim):
            update(b"P")
            update(node.op.encode())
            update(struct.pack("<I", len(node.args)))
            stack.extend(reversed(node.args))
        elif isinstance(node, Sample):
            update(b"S")
            if node.dist is not None:
                # Distribution records are frozen dataclasses of floats; the
                # repr spells class name + parameters with round-trip float
                # formatting, which is exactly the structural content.
                update(repr(node.dist).encode())
        elif isinstance(node, Score):
            update(b"W")
            stack.append(node.arg)
        else:
            raise TypeError(f"cannot fingerprint term {node!r}")
        # Terminate every node's field block so adjacent nodes cannot
        # reassociate (e.g. Var("ab") Var("c") vs Var("a") Var("bc")).
        update(b"\x1f")
    return digest.hexdigest()


def intern_expr(expr: SymExpr, memo: Dict[object, object]) -> SymExpr:
    """The canonical instance of ``expr`` (bottom-up, children first).

    Recursion depth is bounded by the expression depth, which symbolic
    execution keeps proportional to the (finite) fixpoint depth.
    """
    if isinstance(expr, SPrim):
        args = tuple(intern_expr(arg, memo) for arg in expr.args)
        if any(new is not old for new, old in zip(args, expr.args)):
            expr = SPrim(expr.op, args)
    return memo.setdefault(expr, expr)  # type: ignore[return-value]


def intern_constraint(constraint: SymConstraint, memo: Dict[object, object]) -> SymConstraint:
    """The canonical instance of a branching constraint."""
    expr = intern_expr(constraint.expr, memo)
    if expr is not constraint.expr:
        constraint = SymConstraint(expr, constraint.relation)
    return memo.setdefault(constraint, constraint)  # type: ignore[return-value]


def intern_path(path: SymbolicPath, memo: Dict[object, object]) -> SymbolicPath:
    """A path whose expressions are replaced by their canonical instances.

    Distributions are left as-is: they are shared by construction (branch
    states copy the *list*, not the records) and are not generally hashable.
    """
    result = intern_expr(path.result, memo)
    constraints = tuple(intern_constraint(c, memo) for c in path.constraints)
    scores = tuple(intern_expr(score, memo) for score in path.scores)
    if (
        result is path.result
        and all(new is old for new, old in zip(constraints, path.constraints))
        and all(new is old for new, old in zip(scores, path.scores))
    ):
        return path
    return SymbolicPath(
        result=result,
        variable_count=path.variable_count,
        distributions=path.distributions,
        constraints=constraints,
        scores=scores,
        truncated=path.truncated,
    )


def intern_paths(
    paths: Iterable[SymbolicPath], memo: Optional[Dict[object, object]] = None
) -> tuple[SymbolicPath, ...]:
    """Intern a batch of paths against one (optionally shared) memo."""
    if memo is None:
        memo = {}
    return tuple(intern_path(path, memo) for path in paths)


class PathInterner:
    """An incremental path collector interning against one shared memo.

    This is the accumulator behind the streamed-query cache tee
    (:meth:`repro.Model.bounds` with ``stream=True``).  Since the columnar
    path-set core landed it is a thin veneer over
    :class:`repro.symbolic.arena.PathTableBuilder`: paths are added one at a
    time *as they are dispatched*, interned against a single memo so the
    collected set carries full structural sharing, **and** the columnar
    tables grow in the same pass — so when the tee completes, the collected
    set is already a :class:`~repro.symbolic.arena.PathTable`
    (:meth:`build_table`) and the dispatch image is a plain array
    serialisation (:meth:`table_bytes`), with no further tree walks.
    :meth:`approximate_arena_bytes` tracks how large the set is in the flat
    encoding — which is both the cached representation's real footprint and
    the number the tee's memory budget is enforced against.
    """

    def __init__(self) -> None:
        from .arena import PathTableBuilder

        self._builder = PathTableBuilder()

    @property
    def builder(self):
        """The underlying :class:`~repro.symbolic.arena.PathTableBuilder`.

        Consumers that want the columnar form hand this to
        :meth:`repro.symbolic.SymbolicExecutionResult.attach_table_source`.
        """
        return self._builder

    @property
    def memo(self) -> Dict[object, object]:
        return self._builder.memo

    @property
    def paths(self) -> list[SymbolicPath]:
        return self._builder.paths

    def add(self, path: SymbolicPath) -> SymbolicPath:
        """Intern ``path``, append it to the collection and return it."""
        return self._builder.append(path)

    def __len__(self) -> int:
        return len(self._builder)

    def approximate_arena_bytes(self) -> int:
        """Estimated encoded size of the collected paths so far (monotone)."""
        return self._builder.nbytes_estimate

    def build_table(self):
        """Finalise the collection into an in-memory ``PathTable``."""
        return self._builder.build()

    def table_bytes(self) -> bytes:
        """The collection's flat byte image (for shared-memory publication)."""
        return self._builder.to_bytes()

    def clear(self) -> None:
        """Drop everything collected (the tee's budget-overflow action)."""
        self._builder.clear()
