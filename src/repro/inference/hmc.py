"""Hamiltonian Monte Carlo baselines.

Two flavours are provided:

* :func:`hmc` — standard leapfrog HMC for an arbitrary (fixed-dimension) log
  density, with gradients obtained by central finite differences.  It is used
  for the continuous-model experiments (binary GMM, Neal's funnel) where HMC
  notoriously misses modes / mass (Figure 5).
* :func:`hmc_truncated_program` — HMC applied to a *fixed-dimension
  truncation* of a nonparametric program: the latent space is the first ``d``
  uniform draws (transformed to the real line through a logistic map) and
  traces that need more than ``d`` draws are rejected.  This reproduces the
  documented failure mode of running a fixed-dimension sampler such as Pyro's
  HMC on the pedestrian model (Section 7.3, Appendix F.1): the sampler
  explores a *different* (truncated) posterior, which the guaranteed bounds
  are able to expose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..lang.ast import Term
from ..semantics.sampler import ExecutionResult, replay_extending
from ..semantics.trace import TraceExhausted

__all__ = ["HMCResult", "hmc", "hmc_truncated_program"]


@dataclass
class HMCResult:
    """Output of an HMC run."""

    samples: np.ndarray  # shape (num_samples, dimension)
    accepted: int
    proposed: int

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    def first_coordinate(self) -> np.ndarray:
        return self.samples[:, 0]


def _numeric_gradient(
    log_density: Callable[[np.ndarray], float], position: np.ndarray, epsilon: float = 1e-5
) -> np.ndarray:
    gradient = np.zeros_like(position)
    for index in range(position.size):
        bump = np.zeros_like(position)
        bump[index] = epsilon
        upper = log_density(position + bump)
        lower = log_density(position - bump)
        if not (math.isfinite(upper) and math.isfinite(lower)):
            gradient[index] = 0.0
        else:
            gradient[index] = (upper - lower) / (2.0 * epsilon)
    return gradient


def hmc(
    log_density: Callable[[np.ndarray], float],
    initial: Sequence[float],
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    step_size: float = 0.1,
    leapfrog_steps: int = 20,
    burn_in: int = 100,
    gradient: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> HMCResult:
    """Standard HMC with the leapfrog integrator."""
    rng = rng if rng is not None else np.random.default_rng()
    position = np.array(initial, dtype=float)
    dimension = position.size
    grad = gradient if gradient is not None else (
        lambda x: _numeric_gradient(log_density, x)
    )

    current_log_density = log_density(position)
    samples: list[np.ndarray] = []
    accepted = 0
    proposed = 0
    total = burn_in + num_samples
    for iteration in range(total):
        proposed += 1
        momentum = rng.normal(size=dimension)
        proposal = position.copy()
        proposal_momentum = momentum.copy()

        # Leapfrog integration of Hamiltonian dynamics.
        proposal_momentum = proposal_momentum + 0.5 * step_size * grad(proposal)
        for step in range(leapfrog_steps):
            proposal = proposal + step_size * proposal_momentum
            if step != leapfrog_steps - 1:
                proposal_momentum = proposal_momentum + step_size * grad(proposal)
        proposal_momentum = proposal_momentum + 0.5 * step_size * grad(proposal)

        proposal_log_density = log_density(proposal)
        current_hamiltonian = current_log_density - 0.5 * float(momentum @ momentum)
        proposal_hamiltonian = proposal_log_density - 0.5 * float(
            proposal_momentum @ proposal_momentum
        )
        log_accept = proposal_hamiltonian - current_hamiltonian
        if math.isfinite(log_accept) and math.log(max(rng.random(), 1e-300)) < log_accept:
            position = proposal
            current_log_density = proposal_log_density
            accepted += 1
        if iteration >= burn_in:
            samples.append(position.copy())
    return HMCResult(samples=np.array(samples), accepted=accepted, proposed=proposed)


def _logistic(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


def hmc_truncated_program(
    term: Term,
    trace_dimension: int,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    step_size: float = 0.1,
    leapfrog_steps: int = 20,
    burn_in: int = 100,
) -> tuple[HMCResult, np.ndarray]:
    """HMC on a fixed-dimension truncation of a probabilistic program.

    The latent variables are ``z ∈ R^d``; the program is replayed on the trace
    ``sigmoid(z)`` and runs that require more than ``d`` draws receive density
    zero (they are outside the truncated model).  The log target is the
    program's log weight plus the log Jacobian of the logistic reparameterisation
    (the uniform prior on each draw becomes a standard logistic prior on ``z``).

    Returns the raw HMC result over ``z`` together with the corresponding
    program *return values*, which is what the histograms of Figures 1 and 7
    plot.
    """
    rng = rng if rng is not None else np.random.default_rng()

    def run_program(z: np.ndarray) -> Optional[ExecutionResult]:
        trace = tuple(float(u) for u in _logistic(z))
        try:
            execution = replay_extending(term, trace, rng)
        except TraceExhausted:  # pragma: no cover - replay_extending never raises this
            return None
        if len(execution.trace) > trace_dimension:
            return None
        return execution

    def log_density(z: np.ndarray) -> float:
        execution = run_program(z)
        if execution is None or execution.weight <= 0.0:
            return -math.inf
        # Log Jacobian of u = sigmoid(z): sum log u (1 - u).
        u = _logistic(z)
        jacobian = float(np.sum(np.log(u) + np.log1p(-u)))
        return execution.log_weight + jacobian

    # Initialise from the prior restricted to the truncated model.
    initial = None
    for _ in range(1_000):
        candidate = rng.normal(size=trace_dimension)
        if math.isfinite(log_density(candidate)):
            initial = candidate
            break
    if initial is None:
        raise RuntimeError("could not find a feasible initial state for truncated HMC")

    result = hmc(
        log_density,
        initial,
        num_samples,
        rng=rng,
        step_size=step_size,
        leapfrog_steps=leapfrog_steps,
        burn_in=burn_in,
    )
    values = []
    for z in result.samples:
        execution = run_program(np.asarray(z))
        values.append(execution.value if execution is not None else math.nan)
    return result, np.array(values)
