"""Trace-space Metropolis–Hastings (lightweight single-site MH).

A standard baseline MCMC algorithm for universal probabilistic programs: the
state is the trace of uniform draws; a proposal re-draws one position (or
extends/truncates the trace when the control flow changes) and the acceptance
ratio follows Wingate et al.'s lightweight implementation.  It is used by the
simulation-based calibration experiments and as an additional sanity check of
the guaranteed bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..lang.ast import Term
from ..semantics.sampler import simulate, replay_extending
from ..semantics.trace import TraceExhausted

__all__ = ["MHResult", "metropolis_hastings"]


@dataclass
class MHResult:
    """Output of a Metropolis–Hastings run."""

    values: np.ndarray
    accepted: int
    proposed: int

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0


def metropolis_hastings(
    term: Term,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    burn_in: int = 100,
    thinning: int = 1,
    proposal_std: float = 0.15,
) -> MHResult:
    """Single-site lightweight Metropolis–Hastings over program traces."""
    rng = rng if rng is not None else np.random.default_rng()

    # Initialise from the prior until a feasible (positive-weight) trace is found.
    current = simulate(term, rng)
    attempts = 0
    while current.weight <= 0.0 and attempts < 1_000:
        current = simulate(term, rng)
        attempts += 1

    values: list[float] = []
    accepted = 0
    proposed = 0
    total_iterations = burn_in + num_samples * thinning
    for iteration in range(total_iterations):
        proposed += 1
        trace = list(current.trace)
        if trace:
            site = int(rng.integers(len(trace)))
            perturbed = trace[site] + proposal_std * float(rng.normal())
            # Reflect into (0, 1) to keep the proposal symmetric on the unit cube.
            perturbed = perturbed % 2.0
            if perturbed > 1.0:
                perturbed = 2.0 - perturbed
            trace[site] = min(max(perturbed, 1e-12), 1.0 - 1e-12)
        try:
            proposal = replay_extending(term, tuple(trace), rng)
        except TraceExhausted:  # pragma: no cover - defensive
            proposal = None
        if proposal is not None and proposal.weight > 0.0:
            # Lightweight MH acceptance ratio with the trace-length correction.
            log_ratio = proposal.log_weight - current.log_weight
            log_ratio += math.log(max(len(current.trace), 1)) - math.log(max(len(proposal.trace), 1))
            if math.log(max(rng.random(), 1e-300)) < log_ratio:
                current = proposal
                accepted += 1
        if iteration >= burn_in and (iteration - burn_in) % thinning == 0:
            values.append(current.value)
    return MHResult(values=np.array(values), accepted=accepted, proposed=proposed)
