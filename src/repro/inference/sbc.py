"""Simulation-based calibration (SBC).

SBC (Talts et al., as used in paper Section 7.4) validates an inference
algorithm for a generative model: repeatedly draw a parameter from the prior,
generate data, run the inference algorithm on that data and record the rank of
the prior draw among the posterior samples.  If the algorithm is calibrated,
the ranks are uniform; systematic deviations (U-shapes, spikes at the
boundary) expose inference failures.  The paper compares the cost of SBC with
the cost of GuBPI's guaranteed bounds (Table 3); the harness here is what the
corresponding benchmark drives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..lang.ast import Term
from .diagnostics import chi_square_uniformity, rank_statistic, suggested_thinning

__all__ = ["SBCModel", "SBCResult", "simulation_based_calibration"]

#: An inference runner: ``(program, sample_count, rng) -> posterior samples``.
InferenceRunner = Callable[[Term, int, np.random.Generator], Sequence[float]]


@dataclass(frozen=True)
class SBCModel:
    """A generative model in the decomposed form SBC requires.

    ``prior_sampler`` draws the scalar parameter of interest; ``data_generator``
    simulates observations given that parameter; ``program_builder`` produces
    the SPCF posterior program for a data set (its return value must be the
    parameter of interest).
    """

    name: str
    prior_sampler: Callable[[np.random.Generator], float]
    data_generator: Callable[[float, np.random.Generator], Sequence[float]]
    program_builder: Callable[[Sequence[float]], Term]


@dataclass
class SBCResult:
    """Ranks and summary statistics of an SBC run."""

    model: str
    ranks: list[int] = field(default_factory=list)
    samples_per_simulation: int = 0
    simulations: int = 0
    seconds: float = 0.0
    thinning: int = 1

    def rank_histogram(self, bins: int = 8) -> np.ndarray:
        counts, _ = np.histogram(
            np.asarray(self.ranks), bins=bins, range=(0, self.samples_per_simulation + 1)
        )
        return counts

    def uniformity(self, bins: int = 8) -> tuple[float, float]:
        """Pearson χ² statistic and p-value for rank uniformity."""
        return chi_square_uniformity(self.ranks, bins)

    @property
    def looks_calibrated(self) -> bool:
        """A coarse automatic reading of the rank histogram (p-value > 0.01)."""
        _, p_value = self.uniformity()
        return p_value > 0.01


def simulation_based_calibration(
    model: SBCModel,
    inference: InferenceRunner,
    simulations: int,
    samples_per_simulation: int,
    rng: Optional[np.random.Generator] = None,
    thinning: int = 1,
) -> SBCResult:
    """Run SBC for ``model`` using the given inference runner.

    ``thinning`` multiplies the number of posterior samples requested per
    simulation; only every ``thinning``-th sample enters the rank statistic,
    which is the paper's mitigation for autocorrelated chains (Appendix F.3).
    """
    rng = rng if rng is not None else np.random.default_rng()
    result = SBCResult(
        model=model.name,
        samples_per_simulation=samples_per_simulation,
        simulations=simulations,
        thinning=thinning,
    )
    start = time.perf_counter()
    for _ in range(simulations):
        theta = model.prior_sampler(rng)
        data = model.data_generator(theta, rng)
        program = model.program_builder(data)
        raw = list(inference(program, samples_per_simulation * thinning, rng))
        thinned = raw[::thinning][:samples_per_simulation]
        result.ranks.append(rank_statistic(theta, thinned))
    result.seconds = time.perf_counter() - start
    return result
