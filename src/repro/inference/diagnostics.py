"""Diagnostics for stochastic inference output.

Autocorrelation, effective sample size, thinning factors and rank statistics —
the ingredients of the simulation-based calibration comparison of Section 7.4
and Appendix F.3.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "autocorrelation",
    "effective_sample_size",
    "suggested_thinning",
    "rank_statistic",
    "chi_square_uniformity",
]


def autocorrelation(values: Sequence[float], max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation function of a chain (lag 0 .. max_lag)."""
    series = np.asarray(values, dtype=float)
    n = series.size
    if n == 0:
        return np.array([])
    if max_lag is None:
        max_lag = min(n - 1, 200)
    centred = series - series.mean()
    variance = float(np.dot(centred, centred))
    if variance <= 0.0:
        return np.ones(max_lag + 1)
    result = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        result[lag] = float(np.dot(centred[: n - lag], centred[lag:])) / variance
    return result


def effective_sample_size(values: Sequence[float]) -> float:
    """Effective sample size via the initial-positive-sequence estimator."""
    series = np.asarray(values, dtype=float)
    n = series.size
    if n < 3:
        return float(n)
    rho = autocorrelation(series)
    total = 0.0
    for lag in range(1, len(rho)):
        if rho[lag] <= 0.0:
            break
        total += rho[lag]
    ess = n / (1.0 + 2.0 * total)
    return float(min(max(ess, 1.0), n))


def suggested_thinning(values: Sequence[float]) -> int:
    """Thinning factor ``L / L_eff`` recommended by the SBC methodology."""
    n = len(values)
    if n == 0:
        return 1
    ess = effective_sample_size(values)
    return max(1, int(math.ceil(n / ess)))


def rank_statistic(prior_draw: float, posterior_samples: Sequence[float]) -> int:
    """The SBC rank of a prior draw among the posterior samples."""
    samples = np.asarray(posterior_samples, dtype=float)
    return int(np.sum(samples < prior_draw))


def chi_square_uniformity(ranks: Sequence[int], bins: int) -> tuple[float, float]:
    """Pearson χ² statistic (and p-value) for uniformity of SBC ranks."""
    from scipy import stats

    ranks = np.asarray(ranks, dtype=int)
    if ranks.size == 0:
        return 0.0, 1.0
    counts, _ = np.histogram(ranks, bins=bins, range=(0, ranks.max() + 1))
    expected = ranks.size / bins
    statistic = float(np.sum((counts - expected) ** 2 / expected))
    p_value = float(stats.chi2.sf(statistic, df=bins - 1))
    return statistic, p_value
