"""Stochastic inference baselines: IS, MCMC, HMC, SBC and diagnostics.

Samplers that operate on a whole program term share the uniform call shape
``sampler(term, n, rng=..., **kwargs)`` and are registered by name in
:data:`SAMPLERS`, which is what :meth:`repro.Model.sample` dispatches on.
"""

from typing import Callable, Dict, Optional

import numpy as np

from ..lang.ast import Term
from .diagnostics import (
    autocorrelation,
    chi_square_uniformity,
    effective_sample_size,
    rank_statistic,
    suggested_thinning,
)
from .hmc import HMCResult, hmc, hmc_truncated_program
from .importance import ImportanceResult, WeightedSample, importance_sampling
from .mh import MHResult, metropolis_hastings
from .sbc import InferenceRunner, SBCModel, SBCResult, simulation_based_calibration


def _hmc_program_sampler(
    term: Term,
    n: int,
    rng: Optional[np.random.Generator] = None,
    trace_dimension: int = 5,
    **kwargs,
):
    """Adapter giving truncated-program HMC the uniform sampler call shape."""
    return hmc_truncated_program(
        term, trace_dimension=trace_dimension, num_samples=n, rng=rng, **kwargs
    )


#: Program-level samplers by name, all callable as ``sampler(term, n, rng=...)``.
SAMPLERS: Dict[str, Callable] = {
    "importance": importance_sampling,
    "is": importance_sampling,
    "mh": metropolis_hastings,
    "hmc": _hmc_program_sampler,
}


def sampler_by_name(name: str) -> Callable:
    """Look up a registered program-level sampler (raises on unknown names)."""
    try:
        return SAMPLERS[name]
    except KeyError:
        known = ", ".join(sorted(SAMPLERS))
        raise LookupError(f"unknown sampler {name!r}; registered samplers: {known}") from None


__all__ = [
    "SAMPLERS",
    "sampler_by_name",
    "WeightedSample",
    "ImportanceResult",
    "importance_sampling",
    "MHResult",
    "metropolis_hastings",
    "HMCResult",
    "hmc",
    "hmc_truncated_program",
    "SBCModel",
    "SBCResult",
    "InferenceRunner",
    "simulation_based_calibration",
    "autocorrelation",
    "effective_sample_size",
    "suggested_thinning",
    "rank_statistic",
    "chi_square_uniformity",
]
