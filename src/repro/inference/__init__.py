"""Stochastic inference baselines: IS, MCMC, HMC, SBC and diagnostics."""

from .diagnostics import (
    autocorrelation,
    chi_square_uniformity,
    effective_sample_size,
    rank_statistic,
    suggested_thinning,
)
from .hmc import HMCResult, hmc, hmc_truncated_program
from .importance import ImportanceResult, WeightedSample, importance_sampling
from .mh import MHResult, metropolis_hastings
from .sbc import InferenceRunner, SBCModel, SBCResult, simulation_based_calibration

__all__ = [
    "WeightedSample",
    "ImportanceResult",
    "importance_sampling",
    "MHResult",
    "metropolis_hastings",
    "HMCResult",
    "hmc",
    "hmc_truncated_program",
    "SBCModel",
    "SBCResult",
    "InferenceRunner",
    "simulation_based_calibration",
    "autocorrelation",
    "effective_sample_size",
    "suggested_thinning",
    "rank_statistic",
    "chi_square_uniformity",
]
