"""Likelihood-weighted importance sampling.

This is the simple stochastic baseline used throughout the paper's evaluation
(the "IS" histograms of Figures 1 and 7, produced there with Anglican): run
the program forward, drawing every ``sample`` from its prior, and weight the
run by the accumulated ``score``/``observe`` factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..intervals import Interval
from ..lang.ast import Term
from ..semantics.sampler import ExecutionResult, simulate

__all__ = ["WeightedSample", "ImportanceResult", "importance_sampling"]


@dataclass(frozen=True)
class WeightedSample:
    """One weighted posterior sample."""

    value: float
    weight: float
    log_weight: float
    trace_length: int


@dataclass
class ImportanceResult:
    """The output of a likelihood-weighted importance sampling run."""

    samples: list[WeightedSample]

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.samples)

    def values(self) -> np.ndarray:
        return np.array([sample.value for sample in self.samples])

    def weights(self) -> np.ndarray:
        return np.array([sample.weight for sample in self.samples])

    def normalised_weights(self) -> np.ndarray:
        log_weights = np.array([sample.log_weight for sample in self.samples])
        finite = log_weights[np.isfinite(log_weights)]
        if finite.size == 0:
            return np.zeros(len(self.samples))
        shift = finite.max()
        weights = np.where(np.isfinite(log_weights), np.exp(log_weights - shift), 0.0)
        total = weights.sum()
        return weights / total if total > 0 else weights

    def effective_sample_size(self) -> float:
        weights = self.normalised_weights()
        total = float(np.sum(weights**2))
        return 1.0 / total if total > 0 else 0.0

    # ------------------------------------------------------------------
    def evidence_estimate(self) -> float:
        """Monte Carlo estimate of the normalising constant ``Z``."""
        weights = self.weights()
        return float(weights.mean()) if weights.size else 0.0

    def estimate_probability(self, target: Interval) -> float:
        """Self-normalised estimate of the posterior probability of ``target``."""
        values = self.values()
        weights = self.normalised_weights()
        inside = (values >= target.lo) & (values <= target.hi)
        return float(np.sum(weights[inside]))

    def posterior_mean(self) -> float:
        return float(np.sum(self.values() * self.normalised_weights()))

    def posterior_histogram(self, edges: Sequence[float]) -> np.ndarray:
        """Weighted histogram (normalised to total mass 1 over all samples)."""
        values = self.values()
        weights = self.normalised_weights()
        histogram, _ = np.histogram(values, bins=np.asarray(edges), weights=weights)
        return histogram

    def resample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw unweighted posterior samples by multinomial resampling."""
        weights = self.normalised_weights()
        if weights.sum() <= 0:
            raise ValueError("all importance weights are zero; cannot resample")
        indices = rng.choice(len(self.samples), size=count, p=weights)
        return self.values()[indices]


def importance_sampling(
    term: Term,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    max_steps: int = 10_000_000,
) -> ImportanceResult:
    """Run likelihood-weighted importance sampling."""
    rng = rng if rng is not None else np.random.default_rng()
    samples: list[WeightedSample] = []
    for _ in range(num_samples):
        run: ExecutionResult = simulate(term, rng, max_steps=max_steps)
        samples.append(
            WeightedSample(
                value=run.value,
                weight=run.weight,
                log_weight=run.log_weight,
                trace_length=len(run.trace),
            )
        )
    return ImportanceResult(samples=samples)
