"""Deterministic fault injection for the service tier.

The chaos suite (``tests/test_chaos.py``) needs to wedge sockets, kill
workers mid-job, starve shared memory and blow up path streams — at exact,
reproducible moments.  This module is the single switchboard: a seeded
:class:`FaultPlan` names *injection sites* threaded through the service
stack, and each site consults the plan with :func:`decide` before doing its
normal work.

A plan is a ``;``-separated spec, installable programmatically
(:func:`install` / :func:`injected`) or through the ``REPRO_FAULTS``
environment variable (picked up at import time, which is how spawned worker
subprocesses inherit a plan)::

    REPRO_FAULTS="seed=42;worker.job:die@2;queue.send.job:drop@1"

Each rule is ``site:action[(param)]@hits`` where ``hits`` selects which
occurrences of the site fire the action: ``2`` (the second hit), ``1,3``
(an explicit list), ``3+`` (every hit from the third on) or ``*`` (every
hit).  Hit counts are per-site and per-process, so a plan is deterministic:
the same workload hits the same sites in the same order and the faults fire
at the same moments on every run.

Actions and the sites that honour them:

===============  ===========================================================
``drop``         the frame is silently not sent (``protocol.send_frame``)
``truncate``     half the frame is sent, then the socket is hard-closed
``delay``        ``time.sleep(param)`` before the frame goes out
``slowloris``    the frame trickles out in small pieces, ``param`` seconds
                 apart
``die``          the worker process exits immediately (``worker.job`` —
                 the SIGKILL-at-job-``k`` primitive)
``fail``         raise :class:`FaultInjected` (``worker.job``,
                 ``worker.attach``, ``worker.connect``, ``server.query``,
                 ``transport.publish``, ``journal.write``)
``explode``      raise a mid-stream path explosion (``stream.paths``)
``corrupt``      one payload byte is flipped after the frame CRC is
                 computed (``protocol.send_frame`` sites) — the receiver
                 raises ``FrameCorrupted``
``torn``         a prefix of the record reaches disk, then the journal
                 wedges (``journal.write`` — the crash-mid-write
                 primitive)
===============  ===========================================================

Durability sites (PR 9): ``journal.write`` fires once per journal append;
``server.crash`` fires once per completed-and-journaled refinement round
and ``server.ack`` once per persisted result just before the reply frame —
both honour ``die`` (the process exits immediately, the kill-9-at-round-``k``
primitive).

The whole module is **zero-overhead when disabled**: with no plan
installed, :func:`decide` is one global-``None`` check, and the hot
per-path site in the streaming dispatcher reads :func:`active` once before
its loop and skips the call entirely.

``seed=N`` seeds the plan's private RNG, which supplies default parameters
for ``delay``/``slowloris`` rules that omit one — so even unparameterised
timing faults are reproducible run to run.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "FaultAction",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active",
    "decide",
    "injected",
    "install",
    "uninstall",
]

#: Environment variable holding a fault-plan spec (read once at import).
ENV_VAR = "REPRO_FAULTS"

#: Every recognised action kind (validated at parse time).
ACTION_KINDS = (
    "drop",
    "truncate",
    "delay",
    "slowloris",
    "die",
    "fail",
    "explode",
    "corrupt",
    "torn",
)


class FaultInjected(RuntimeError):
    """An injected fault fired (the ``fail`` action's exception)."""


@dataclass(frozen=True)
class FaultAction:
    """What a fired rule asks the injection site to do."""

    kind: str
    param: Optional[float] = None


class _HitSpec:
    """Which per-site hit counts (1-based) fire a rule.

    ``"2"`` → hit 2 only; ``"1,3"`` → hits 1 and 3; ``"3+"`` → hit 3 and
    every later one; ``"*"`` → every hit.
    """

    def __init__(self, spec: str) -> None:
        spec = spec.strip()
        if not spec:
            raise ValueError("empty hit spec")
        self.spec = spec
        self._always = spec == "*"
        self._from: Optional[int] = None
        self._exact: Tuple[int, ...] = ()
        if self._always:
            return
        if spec.endswith("+"):
            self._from = int(spec[:-1])
            if self._from < 1:
                raise ValueError(f"hit spec must be 1-based, got {spec!r}")
            return
        self._exact = tuple(int(part) for part in spec.split(","))
        if any(hit < 1 for hit in self._exact):
            raise ValueError(f"hit spec must be 1-based, got {spec!r}")

    def matches(self, count: int) -> bool:
        if self._always:
            return True
        if self._from is not None:
            return count >= self._from
        return count in self._exact

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_HitSpec({self.spec!r})"


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``site:action[(param)]@hits`` rule."""

    site: str
    action: FaultAction
    hits: _HitSpec


class FaultPlan:
    """A seeded, deterministic set of fault rules with per-site hit counters."""

    def __init__(self, rules: List[FaultRule], seed: Optional[int] = None) -> None:
        self.rules = tuple(rules)
        self.seed = seed
        self._rng = random.Random(0 if seed is None else seed)
        self._by_site: Dict[str, Tuple[FaultRule, ...]] = {}
        for rule in rules:
            self._by_site[rule.site] = self._by_site.get(rule.site, ()) + (rule,)
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``;``-separated plan spec (see the module docstring)."""
        rules: List[FaultRule] = []
        seed: Optional[int] = None
        for raw in spec.split(";"):
            part = raw.strip()
            if not part:
                continue
            if part.startswith("seed="):
                seed = int(part[len("seed="):])
                continue
            try:
                site_part, rest = part.split(":", 1)
                action_part, hits_part = rest.rsplit("@", 1)
            except ValueError as error:
                raise ValueError(
                    f"fault rule must look like 'site:action@hits', got {part!r}"
                ) from error
            site = site_part.strip()
            action_part = action_part.strip()
            param: Optional[float] = None
            if action_part.endswith(")") and "(" in action_part:
                kind, param_part = action_part[:-1].split("(", 1)
                param = float(param_part)
            else:
                kind = action_part
            kind = kind.strip()
            if kind not in ACTION_KINDS:
                kinds = ", ".join(ACTION_KINDS)
                raise ValueError(f"unknown fault action {kind!r} (expected one of {kinds})")
            rules.append(FaultRule(site, FaultAction(kind, param), _HitSpec(hits_part)))
        return cls(rules, seed=seed)

    def decide(self, site: str) -> Optional[FaultAction]:
        """Count one hit of ``site`` and return the action to take, if any."""
        with self._lock:
            count = self._counters.get(site, 0) + 1
            self._counters[site] = count
            for rule in self._by_site.get(site, ()):
                if rule.hits.matches(count):
                    return rule.action
        return None

    def default_param(self, lo: float = 0.001, hi: float = 0.01) -> float:
        """A seeded default parameter for delay-style rules that omit one."""
        with self._lock:
            return self._rng.uniform(lo, hi)

    def hit_count(self, site: str) -> int:
        """How many times ``site`` has been consulted (telemetry/tests)."""
        with self._lock:
            return self._counters.get(site, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self.rules)} rules, seed={self.seed})"


#: The process-wide installed plan (None = fault injection disabled).
_PLAN: Optional[FaultPlan] = None


def active() -> Optional[FaultPlan]:
    """The installed plan, or ``None``.  Hot loops read this once up front."""
    return _PLAN


def decide(site: str) -> Optional[FaultAction]:
    """Consult the installed plan at an injection site (fast ``None`` path)."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.decide(site)


def install(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide (replacing any previous plan)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    """Remove the installed plan (fault injection becomes a no-op again)."""
    global _PLAN
    _PLAN = None


@contextmanager
def injected(spec: str) -> Iterator[FaultPlan]:
    """Install a parsed plan for the duration of a ``with`` block (tests)."""
    plan = FaultPlan.parse(spec)
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


# Environment bootstrap: spawned worker subprocesses inherit REPRO_FAULTS
# through their environment, so a plan set by the chaos suite (or an
# operator drill) is live in every process of the service stack.
_env_spec = os.environ.get(ENV_VAR)
if _env_spec:
    _PLAN = FaultPlan.parse(_env_spec)
del _env_spec
