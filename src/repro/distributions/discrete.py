"""Discrete distributions.

Discrete distributions back the Table 2 benchmarks (Bayesian-network style
programs) and the exact enumeration engine of :mod:`repro.exact`.  In SPCF a
discrete sample is desugared into a uniform sample compared against the
cumulative probabilities, so the guaranteed-bounds analysis never sees these
objects directly; the enumeration engine and the stochastic samplers do.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..intervals import Interval
from .base import DiscreteDistribution

__all__ = ["Bernoulli", "Categorical", "DiscreteUniform", "Binomial", "Poisson", "Geometric"]


class Bernoulli(DiscreteDistribution):
    """Bernoulli distribution returning 1 with probability ``p``."""

    name = "bernoulli"

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("Bernoulli requires p in [0, 1]")
        self.p = float(p)

    def params(self) -> tuple[float, ...]:
        return (self.p,)

    def sample(self, rng: np.random.Generator) -> float:
        return 1.0 if rng.random() < self.p else 0.0

    def pdf(self, value: float) -> float:
        if value == 1.0:
            return self.p
        if value == 0.0:
            return 1.0 - self.p
        return 0.0

    def cdf(self, value: float) -> float:
        if value < 0.0:
            return 0.0
        if value < 1.0:
            return 1.0 - self.p
        return 1.0

    def support(self) -> Interval:
        return Interval(0.0, 1.0)

    def support_values(self) -> Sequence[float]:
        return (0.0, 1.0)


class Categorical(DiscreteDistribution):
    """Categorical distribution over arbitrary real outcomes."""

    name = "categorical"

    def __init__(self, outcomes: Sequence[float], probabilities: Sequence[float]) -> None:
        if len(outcomes) != len(probabilities):
            raise ValueError("outcomes and probabilities must have equal length")
        if not outcomes:
            raise ValueError("Categorical requires at least one outcome")
        total = float(sum(probabilities))
        if total <= 0 or any(p < 0 for p in probabilities):
            raise ValueError("probabilities must be non-negative and sum to a positive value")
        self.outcomes = tuple(float(o) for o in outcomes)
        self.probabilities = tuple(float(p) / total for p in probabilities)

    def params(self) -> tuple[float, ...]:
        return self.outcomes + self.probabilities

    def sample(self, rng: np.random.Generator) -> float:
        index = rng.choice(len(self.outcomes), p=self.probabilities)
        return self.outcomes[int(index)]

    def pdf(self, value: float) -> float:
        return sum(
            p for o, p in zip(self.outcomes, self.probabilities) if o == value
        )

    def cdf(self, value: float) -> float:
        return sum(p for o, p in zip(self.outcomes, self.probabilities) if o <= value)

    def support(self) -> Interval:
        return Interval(min(self.outcomes), max(self.outcomes))

    def support_values(self) -> Sequence[float]:
        return self.outcomes


class DiscreteUniform(DiscreteDistribution):
    """Uniform distribution over the integers ``low, low + 1, ..., high``."""

    name = "discrete_uniform"

    def __init__(self, low: int, high: int) -> None:
        if high < low:
            raise ValueError("DiscreteUniform requires high >= low")
        self.low = int(low)
        self.high = int(high)
        self._mass = 1.0 / (self.high - self.low + 1)

    def params(self) -> tuple[float, ...]:
        return (float(self.low), float(self.high))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.integers(self.low, self.high + 1))

    def pdf(self, value: float) -> float:
        if value != int(value):
            return 0.0
        return self._mass if self.low <= value <= self.high else 0.0

    def cdf(self, value: float) -> float:
        if value < self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        return (math.floor(value) - self.low + 1) * self._mass

    def support(self) -> Interval:
        return Interval(float(self.low), float(self.high))

    def support_values(self) -> Sequence[float]:
        return tuple(float(v) for v in range(self.low, self.high + 1))


class Binomial(DiscreteDistribution):
    """Binomial distribution with ``n`` trials and success probability ``p``."""

    name = "binomial"

    def __init__(self, n: int, p: float) -> None:
        if n < 0:
            raise ValueError("Binomial requires n >= 0")
        if not 0.0 <= p <= 1.0:
            raise ValueError("Binomial requires p in [0, 1]")
        self.n = int(n)
        self.p = float(p)

    def params(self) -> tuple[float, ...]:
        return (float(self.n), self.p)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.binomial(self.n, self.p))

    def pdf(self, value: float) -> float:
        if value != int(value) or not 0 <= value <= self.n:
            return 0.0
        k = int(value)
        return math.comb(self.n, k) * self.p ** k * (1.0 - self.p) ** (self.n - k)

    def cdf(self, value: float) -> float:
        if value < 0:
            return 0.0
        return sum(self.pdf(float(k)) for k in range(0, min(self.n, int(math.floor(value))) + 1))

    def support(self) -> Interval:
        return Interval(0.0, float(self.n))

    def support_values(self) -> Sequence[float]:
        return tuple(float(k) for k in range(self.n + 1))


class Poisson(DiscreteDistribution):
    """Poisson distribution; the explicit support is truncated for enumeration."""

    name = "poisson"

    def __init__(self, rate: float, truncation: int = 64) -> None:
        if rate <= 0:
            raise ValueError("Poisson requires rate > 0")
        self.rate = float(rate)
        self.truncation = int(truncation)

    def params(self) -> tuple[float, ...]:
        return (self.rate,)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.poisson(self.rate))

    def pdf(self, value: float) -> float:
        if value != int(value) or value < 0:
            return 0.0
        k = int(value)
        return math.exp(k * math.log(self.rate) - self.rate - math.lgamma(k + 1))

    def cdf(self, value: float) -> float:
        if value < 0:
            return 0.0
        return sum(self.pdf(float(k)) for k in range(0, int(math.floor(value)) + 1))

    def support(self) -> Interval:
        return Interval(0.0, math.inf)

    def support_values(self) -> Sequence[float]:
        return tuple(float(k) for k in range(self.truncation + 1))


class Geometric(DiscreteDistribution):
    """Geometric distribution counting failures before the first success."""

    name = "geometric"

    def __init__(self, p: float, truncation: int = 64) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError("Geometric requires p in (0, 1]")
        self.p = float(p)
        self.truncation = int(truncation)

    def params(self) -> tuple[float, ...]:
        return (self.p,)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.geometric(self.p) - 1)

    def pdf(self, value: float) -> float:
        if value != int(value) or value < 0:
            return 0.0
        return self.p * (1.0 - self.p) ** int(value)

    def cdf(self, value: float) -> float:
        if value < 0:
            return 0.0
        return 1.0 - (1.0 - self.p) ** (math.floor(value) + 1)

    def support(self) -> Interval:
        return Interval(0.0, math.inf)

    def support_values(self) -> Sequence[float]:
        return tuple(float(k) for k in range(self.truncation + 1))
