"""Continuous distributions used by the benchmark programs.

Every distribution provides exact ``cdf``/``quantile`` functions (so that the
box-splitting analyser can compute exact probability masses of sub-intervals)
and a sound interval lifting of its density.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from ..intervals import Interval
from .base import ContinuousDistribution

__all__ = [
    "Uniform",
    "Normal",
    "Beta",
    "Exponential",
    "Gamma",
    "Cauchy",
    "unimodal_pdf_bounds",
]

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def unimodal_pdf_bounds(pdf, mode: float, values: Interval, support: Interval) -> Interval:
    """Bounds on a unimodal density over ``values``.

    The density is assumed to increase up to ``mode`` and decrease afterwards,
    which covers every unimodal distribution in this module.  The maximum over
    the interval is attained at the mode when the mode lies inside the
    interval and at the nearest endpoint otherwise; the minimum is attained at
    the endpoint farthest from the mode.
    """
    clipped = values.meet(support)
    if clipped.is_empty:
        return Interval.point(0.0)
    lo, hi = clipped.lo, clipped.hi
    pdf_lo = pdf(lo) if math.isfinite(lo) else 0.0
    pdf_hi = pdf(hi) if math.isfinite(hi) else 0.0
    if lo <= mode <= hi:
        upper = pdf(mode)
    elif hi < mode:
        upper = pdf_hi
    else:
        upper = pdf_lo
    lower = min(pdf_lo, pdf_hi)
    if not values.contains_interval(clipped.meet(values)) or not support.contains_interval(values):
        # Part of the queried interval lies outside the support where the
        # density is zero.
        lower = 0.0
    return Interval(max(0.0, lower), max(upper, lower))


class Uniform(ContinuousDistribution):
    """Uniform distribution on ``[low, high]``."""

    name = "uniform"

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if not high > low:
            raise ValueError("Uniform requires high > low")
        self.low = float(low)
        self.high = float(high)
        self._density = 1.0 / (self.high - self.low)

    def params(self) -> tuple[float, ...]:
        return (self.low, self.high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def pdf(self, value: float) -> float:
        return self._density if self.low <= value <= self.high else 0.0

    def cdf(self, value: float) -> float:
        if value <= self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        return (value - self.low) * self._density

    def quantile(self, probability: float) -> float:
        probability = min(max(probability, 0.0), 1.0)
        return self.low + probability * (self.high - self.low)

    def support(self) -> Interval:
        return Interval(self.low, self.high)

    def pdf_interval(self, values: Interval) -> Interval:
        clipped = values.meet(self.support())
        if clipped.is_empty:
            return Interval.point(0.0)
        lower = self._density if self.support().contains_interval(values) else 0.0
        return Interval(lower, self._density)


class Normal(ContinuousDistribution):
    """Gaussian distribution ``Normal(mean, std)``."""

    name = "normal"

    def __init__(self, mean: float = 0.0, std: float = 1.0) -> None:
        if std <= 0:
            raise ValueError("Normal requires std > 0")
        self.mean = float(mean)
        self.std = float(std)

    def params(self) -> tuple[float, ...]:
        return (self.mean, self.std)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mean, self.std))

    def pdf(self, value: float) -> float:
        if not math.isfinite(value):
            return 0.0
        z = (value - self.mean) / self.std
        return math.exp(-0.5 * z * z) / (self.std * _SQRT_2PI)

    def log_pdf(self, value: float) -> float:
        z = (value - self.mean) / self.std
        return -0.5 * z * z - math.log(self.std * _SQRT_2PI)

    def cdf(self, value: float) -> float:
        return 0.5 * math.erfc(-(value - self.mean) / (self.std * math.sqrt(2.0)))

    def quantile(self, probability: float) -> float:
        return float(stats.norm.ppf(probability, loc=self.mean, scale=self.std))

    def support(self) -> Interval:
        return Interval(-math.inf, math.inf)

    def pdf_interval(self, values: Interval) -> Interval:
        return unimodal_pdf_bounds(self.pdf, self.mean, values, self.support())

    @staticmethod
    def pdf_interval_params(
        mean: Interval, std: Interval, values: Interval
    ) -> Interval:
        """Bounds on ``normal_pdf(mean, std, x)`` with interval parameters.

        Used when the observation's mean (or the observed value itself) is an
        interval produced by ``approxFix``.  The bound is derived from the
        distance ``d = |x - mean|``: for fixed ``d`` the density is unimodal
        in ``std`` with maximum at ``std = d``.
        """
        if values.is_empty or mean.is_empty or std.is_empty:
            return Interval.point(0.0)
        std = std.meet(Interval(1e-300, math.inf))
        if std.is_empty:
            return Interval(0.0, math.inf)
        distance = (values - mean).abs()
        d_min, d_max = distance.lo, distance.hi

        def density(d: float, sigma: float) -> float:
            if not math.isfinite(d):
                return 0.0
            return math.exp(-0.5 * (d / sigma) ** 2) / (sigma * _SQRT_2PI)

        # Upper bound: smallest distance, best sigma.
        candidates_hi = [density(d_min, std.lo), density(d_min, std.hi)]
        if d_min > 0 and d_min in std:
            candidates_hi.append(density(d_min, d_min))
        if d_min == 0.0:
            candidates_hi.append(1.0 / (std.lo * _SQRT_2PI))
        upper = max(candidates_hi)
        # Lower bound: largest distance, worst sigma.
        candidates_lo = [density(d_max, std.lo), density(d_max, std.hi)]
        lower = min(candidates_lo)
        return Interval(max(0.0, lower), upper)


class Beta(ContinuousDistribution):
    """Beta distribution on ``[0, 1]``."""

    name = "beta"

    def __init__(self, alpha: float, beta: float) -> None:
        if alpha <= 0 or beta <= 0:
            raise ValueError("Beta requires positive shape parameters")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._log_norm = (
            math.lgamma(self.alpha) + math.lgamma(self.beta) - math.lgamma(self.alpha + self.beta)
        )

    def params(self) -> tuple[float, ...]:
        return (self.alpha, self.beta)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.beta(self.alpha, self.beta))

    def pdf(self, value: float) -> float:
        if value < 0.0 or value > 1.0 or not math.isfinite(value):
            return 0.0
        if value == 0.0:
            if self.alpha < 1.0:
                return math.inf
            if self.alpha > 1.0:
                return 0.0
            return math.exp(-self._log_norm)  # alpha == 1: the density at 0 is 1/B(1, beta)
        if value == 1.0:
            if self.beta < 1.0:
                return math.inf
            if self.beta > 1.0:
                return 0.0
            return math.exp(-self._log_norm)
        return math.exp(self.log_pdf(value))

    def log_pdf(self, value: float) -> float:
        if value <= 0.0 or value >= 1.0:
            density = self.pdf(value)
            if density == 0.0:
                return -math.inf
            if math.isinf(density):
                return math.inf
            return math.log(density)
        return (
            (self.alpha - 1.0) * math.log(value)
            + (self.beta - 1.0) * math.log1p(-value)
            - self._log_norm
        )

    def cdf(self, value: float) -> float:
        return float(stats.beta.cdf(value, self.alpha, self.beta))

    def quantile(self, probability: float) -> float:
        return float(stats.beta.ppf(probability, self.alpha, self.beta))

    def support(self) -> Interval:
        return Interval(0.0, 1.0)

    def _mode(self) -> float:
        if self.alpha > 1.0 and self.beta > 1.0:
            return (self.alpha - 1.0) / (self.alpha + self.beta - 2.0)
        if self.alpha <= 1.0 < self.beta:
            return 0.0
        if self.beta <= 1.0 < self.alpha:
            return 1.0
        if self.alpha <= 1.0 and self.beta <= 1.0:
            # Bathtub-shaped: the density is maximised at a boundary; treat the
            # left boundary as the "mode" and compensate in pdf_interval.
            return 0.0
        return 0.5

    def pdf_interval(self, values: Interval) -> Interval:
        if self.alpha < 1.0 or self.beta < 1.0:
            clipped = values.meet(self.support())
            if clipped.is_empty:
                return Interval.point(0.0)
            # Potentially unbounded near the boundary; evaluate endpoints and
            # take a conservative upper bound.
            samples = [self.pdf(x) for x in clipped.sample_points(5)]
            upper = math.inf if clipped.lo <= 0.0 or clipped.hi >= 1.0 else max(samples)
            return Interval(0.0, upper)
        return unimodal_pdf_bounds(self.pdf, self._mode(), values, self.support())


class Exponential(ContinuousDistribution):
    """Exponential distribution with the given rate."""

    name = "exponential"

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError("Exponential requires rate > 0")
        self.rate = float(rate)

    def params(self) -> tuple[float, ...]:
        return (self.rate,)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def pdf(self, value: float) -> float:
        if value < 0.0 or not math.isfinite(value):
            return 0.0
        return self.rate * math.exp(-self.rate * value)

    def cdf(self, value: float) -> float:
        if value <= 0.0:
            return 0.0
        return 1.0 - math.exp(-self.rate * value)

    def quantile(self, probability: float) -> float:
        probability = min(max(probability, 0.0), 1.0 - 1e-16)
        return -math.log1p(-probability) / self.rate

    def support(self) -> Interval:
        return Interval(0.0, math.inf)

    def pdf_interval(self, values: Interval) -> Interval:
        return unimodal_pdf_bounds(self.pdf, 0.0, values, self.support())


class Gamma(ContinuousDistribution):
    """Gamma distribution with shape ``k`` and rate ``rate``."""

    name = "gamma"

    def __init__(self, shape: float, rate: float = 1.0) -> None:
        if shape <= 0 or rate <= 0:
            raise ValueError("Gamma requires positive shape and rate")
        self.shape = float(shape)
        self.rate = float(rate)

    def params(self) -> tuple[float, ...]:
        return (self.shape, self.rate)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, 1.0 / self.rate))

    def pdf(self, value: float) -> float:
        if value < 0.0 or not math.isfinite(value):
            return 0.0
        if value == 0.0:
            if self.shape < 1.0:
                return math.inf
            return self.rate if self.shape == 1.0 else 0.0
        log_density = (
            self.shape * math.log(self.rate)
            + (self.shape - 1.0) * math.log(value)
            - self.rate * value
            - math.lgamma(self.shape)
        )
        return math.exp(log_density)

    def cdf(self, value: float) -> float:
        return float(stats.gamma.cdf(value, self.shape, scale=1.0 / self.rate))

    def quantile(self, probability: float) -> float:
        return float(stats.gamma.ppf(probability, self.shape, scale=1.0 / self.rate))

    def support(self) -> Interval:
        return Interval(0.0, math.inf)

    def _mode(self) -> float:
        return (self.shape - 1.0) / self.rate if self.shape >= 1.0 else 0.0

    def pdf_interval(self, values: Interval) -> Interval:
        if self.shape < 1.0:
            clipped = values.meet(self.support())
            if clipped.is_empty:
                return Interval.point(0.0)
            upper = math.inf if clipped.lo <= 0.0 else self.pdf(clipped.lo)
            return Interval(0.0, upper)
        return unimodal_pdf_bounds(self.pdf, self._mode(), values, self.support())


class Cauchy(ContinuousDistribution):
    """Cauchy distribution with the given location and scale."""

    name = "cauchy"

    def __init__(self, location: float = 0.0, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("Cauchy requires scale > 0")
        self.location = float(location)
        self.scale = float(scale)

    def params(self) -> tuple[float, ...]:
        return (self.location, self.scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.location + self.scale * rng.standard_cauchy())

    def pdf(self, value: float) -> float:
        if not math.isfinite(value):
            return 0.0
        z = (value - self.location) / self.scale
        return 1.0 / (math.pi * self.scale * (1.0 + z * z))

    def cdf(self, value: float) -> float:
        return 0.5 + math.atan((value - self.location) / self.scale) / math.pi

    def quantile(self, probability: float) -> float:
        probability = min(max(probability, 1e-16), 1.0 - 1e-16)
        return self.location + self.scale * math.tan(math.pi * (probability - 0.5))

    def support(self) -> Interval:
        return Interval(-math.inf, math.inf)

    def pdf_interval(self, values: Interval) -> Interval:
        return unimodal_pdf_bounds(self.pdf, self.location, values, self.support())
