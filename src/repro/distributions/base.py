"""Abstract interface for probability distributions.

Distributions serve three purposes in the reproduction:

* **Concrete semantics / stochastic inference** — drawing samples and
  evaluating densities (``pdf``/``log_pdf``/``cdf``/``quantile``).
* **Guaranteed-bounds analysis** — sound interval bounds on the density over a
  box (``pdf_interval``) and the exact probability mass of an interval
  (``measure``), which the box-splitting path analyser uses as the volume of a
  non-uniform sample split (Appendix E.1).
* **Primitive registration** — every distribution contributes a
  ``<name>_pdf`` primitive to the global registry so that ``observe``
  statements desugar to ordinary ``score`` of a primitive application.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from ..intervals import Interval

__all__ = ["Distribution", "ContinuousDistribution", "DiscreteDistribution"]


class Distribution(abc.ABC):
    """Base class for all distributions."""

    #: short identifier used for primitive names and pretty printing
    name: str = "distribution"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one sample."""

    @abc.abstractmethod
    def pdf(self, value: float) -> float:
        """Density (or mass) at ``value``."""

    def log_pdf(self, value: float) -> float:
        density = self.pdf(value)
        return math.log(density) if density > 0.0 else -math.inf

    @abc.abstractmethod
    def cdf(self, value: float) -> float:
        """Cumulative distribution function."""

    @abc.abstractmethod
    def support(self) -> Interval:
        """Smallest interval containing the support."""

    # ------------------------------------------------------------------
    # Interval reasoning
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf_interval(self, values: Interval) -> Interval:
        """Sound bounds on ``{pdf(x) : x in values}``."""

    def measure(self, values: Interval) -> float:
        """Exact probability of the value landing inside ``values``."""
        if values.is_empty:
            return 0.0
        return max(0.0, self.cdf(values.hi) - self.cdf(values.lo))

    def measure_interval(self, values: Interval) -> Interval:
        """Probability mass of ``values`` as a (point) interval."""
        mass = self.measure(values)
        return Interval.point(mass)

    # ------------------------------------------------------------------
    def params(self) -> tuple[float, ...]:
        """Parameters used for equality and hashing; override as needed."""
        return ()

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.params() == other.params()  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.params()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{p:g}" for p in self.params())
        return f"{type(self).__name__}({args})"


class ContinuousDistribution(Distribution):
    """A distribution with a density w.r.t. Lebesgue measure."""

    @abc.abstractmethod
    def quantile(self, probability: float) -> float:
        """Inverse CDF; used to express non-uniform samples via uniforms."""

    def quantile_interval(self, probabilities: Interval) -> Interval:
        """Monotone interval lifting of the quantile function."""
        clipped = probabilities.meet(Interval(0.0, 1.0))
        if clipped.is_empty:
            return Interval.empty()
        return clipped.monotone_image(self.quantile, increasing=True)


class DiscreteDistribution(Distribution):
    """A distribution with countable support; ``pdf`` is the probability mass."""

    @abc.abstractmethod
    def support_values(self) -> Sequence[float]:
        """The support as an explicit (finite) sequence when available."""

    def quantile(self, probability: float) -> float:
        """Generalised inverse CDF (smallest support value with CDF ≥ p).

        Needed so that native discrete draws fit the uniform trace semantics:
        a trace entry ``u`` is mapped to ``quantile(u)`` exactly like for
        continuous distributions.
        """
        values = sorted(self.support_values())
        if not values:
            raise ValueError("cannot take the quantile of an empty support")
        cumulative = 0.0
        for value in values:
            cumulative += self.pdf(value)
            if probability <= cumulative + 1e-15:
                return value
        return values[-1]

    def measure(self, values: Interval) -> float:
        if values.is_empty:
            return 0.0
        return sum(self.pdf(v) for v in self.support_values() if v in values)

    def pdf_interval(self, values: Interval) -> Interval:
        masses = [self.pdf(v) for v in self.support_values() if v in values]
        if not masses:
            return Interval.point(0.0)
        # Values strictly between support points have mass 0.
        return Interval(0.0, max(masses)) if values.width > 0 else Interval.hull_of(masses)
