"""Registration of density primitives.

``observe M from D`` desugars into ``score(pdf_D(M))`` (paper Section 2.2,
footnote 5).  This module registers one primitive per distribution family,
taking the distribution parameters as leading arguments followed by the
observed value, e.g. ``normal_pdf(mean, std, x)``.

Every primitive comes with a sound interval lifting so that the interval
trace semantics and the weight-aware type system can bound the score weight
of observations whose arguments are only known up to an interval.
"""

from __future__ import annotations

import math

from ..intervals import Interval, Primitive, REGISTRY
from .continuous import Beta, Cauchy, Exponential, Gamma, Normal, Uniform

__all__ = ["register_density_primitives"]


def _normal_pdf(mean: float, std: float, value: float) -> float:
    return Normal(mean, std).pdf(value)


def _normal_pdf_interval(mean: Interval, std: Interval, value: Interval) -> Interval:
    return Normal.pdf_interval_params(mean, std, value)


def _uniform_pdf(low: float, high: float, value: float) -> float:
    if high <= low:
        return 0.0
    return Uniform(low, high).pdf(value)


def _uniform_pdf_interval(low: Interval, high: Interval, value: Interval) -> Interval:
    width = high - low
    if width.hi <= 0:
        return Interval.point(0.0)
    max_density = math.inf if width.lo <= 0 else 1.0 / width.lo
    if low.is_point and high.is_point and high.lo > low.lo:
        return Uniform(low.lo, high.lo).pdf_interval(value)
    return Interval(0.0, max_density)


def _beta_pdf(alpha: float, beta: float, value: float) -> float:
    return Beta(alpha, beta).pdf(value)


def _beta_pdf_interval(alpha: Interval, beta: Interval, value: Interval) -> Interval:
    if alpha.is_point and beta.is_point:
        return Beta(alpha.lo, beta.lo).pdf_interval(value)
    return Interval(0.0, math.inf)


def _exponential_pdf(rate: float, value: float) -> float:
    return Exponential(rate).pdf(value)


def _exponential_pdf_interval(rate: Interval, value: Interval) -> Interval:
    if rate.is_point and rate.lo > 0:
        return Exponential(rate.lo).pdf_interval(value)
    hi_rate = rate.hi if math.isfinite(rate.hi) else math.inf
    return Interval(0.0, hi_rate)


def _gamma_pdf(shape: float, rate: float, value: float) -> float:
    return Gamma(shape, rate).pdf(value)


def _gamma_pdf_interval(shape: Interval, rate: Interval, value: Interval) -> Interval:
    if shape.is_point and rate.is_point:
        return Gamma(shape.lo, rate.lo).pdf_interval(value)
    return Interval(0.0, math.inf)


def _cauchy_pdf(location: float, scale: float, value: float) -> float:
    return Cauchy(location, scale).pdf(value)


def _cauchy_pdf_interval(location: Interval, scale: Interval, value: Interval) -> Interval:
    if location.is_point and scale.is_point:
        return Cauchy(location.lo, scale.lo).pdf_interval(value)
    if scale.lo <= 0:
        return Interval(0.0, math.inf)
    return Interval(0.0, 1.0 / (math.pi * scale.lo))


def _bernoulli_pmf(p: float, value: float) -> float:
    if value == 1.0:
        return p
    if value == 0.0:
        return 1.0 - p
    return 0.0


def _bernoulli_pmf_interval(p: Interval, value: Interval) -> Interval:
    candidates: list[float] = []
    if value.intersects(Interval.point(1.0)):
        candidates.extend([p.lo, p.hi])
    if value.intersects(Interval.point(0.0)):
        candidates.extend([1.0 - p.lo, 1.0 - p.hi])
    if not candidates:
        return Interval.point(0.0)
    lower = 0.0 if value.width > 0 else min(candidates)
    return Interval(max(0.0, lower), max(candidates))


_DENSITY_PRIMITIVES = [
    Primitive("normal_pdf", 3, _normal_pdf, _normal_pdf_interval),
    Primitive("uniform_pdf", 3, _uniform_pdf, _uniform_pdf_interval),
    Primitive("beta_pdf", 3, _beta_pdf, _beta_pdf_interval),
    Primitive("exponential_pdf", 2, _exponential_pdf, _exponential_pdf_interval),
    Primitive("gamma_pdf", 3, _gamma_pdf, _gamma_pdf_interval),
    Primitive("cauchy_pdf", 3, _cauchy_pdf, _cauchy_pdf_interval),
    Primitive("bernoulli_pmf", 2, _bernoulli_pmf, _bernoulli_pmf_interval),
]


def register_density_primitives() -> None:
    """Idempotently add all density primitives to the global registry."""
    for primitive in _DENSITY_PRIMITIVES:
        if primitive.name not in REGISTRY:
            REGISTRY.register(primitive)


register_density_primitives()
