"""Probability distributions with exact CDFs and interval-lifted densities."""

from .base import ContinuousDistribution, DiscreteDistribution, Distribution
from .continuous import Beta, Cauchy, Exponential, Gamma, Normal, Uniform, unimodal_pdf_bounds
from .discrete import Bernoulli, Binomial, Categorical, DiscreteUniform, Geometric, Poisson
from .primitives import register_density_primitives

__all__ = [
    "Distribution",
    "ContinuousDistribution",
    "DiscreteDistribution",
    "Uniform",
    "Normal",
    "Beta",
    "Exponential",
    "Gamma",
    "Cauchy",
    "Bernoulli",
    "Categorical",
    "DiscreteUniform",
    "Binomial",
    "Poisson",
    "Geometric",
    "unimodal_pdf_bounds",
    "register_density_primitives",
]
