"""Lower and upper bounds on the denotation from sets of interval traces.

This implements the measure-level constructions of Section 3.3:

* ``lowerBd^T_P(U) = Σ_t vol(t) · min wt^I_P(t) · [val^I_P(t) ⊆ U]`` for a
  countable *compatible* set ``T`` (Theorem 4.1 — sound lower bounds), and
* ``upperBd^T_P(U) = Σ_t Σ_branches vol(t) · sup w · [val ∩ U ≠ ∅]`` for a
  countable *exhaustive* set (Theorem 4.2 plus the Appendix A.4 refinement
  that explores both branches of an undecided conditional).

These direct bounds are exponential in the number of samples; the production
path goes through symbolic execution (:mod:`repro.analysis.engine`).  They are
retained both for fidelity with the paper's definitions and as an oracle in
the test suite (the engine's bounds are cross-checked against them on small
programs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..intervals import Interval
from ..intervals.box import Box, compatible_set, unit_box
from ..lang.ast import Term
from .interval_reduction import interval_outcomes, interval_value_function, interval_weight_function

__all__ = [
    "lower_bound",
    "upper_bound",
    "DirectBounds",
    "direct_bounds",
    "grid_interval_traces",
]


def _trace_volume(trace: Box) -> float:
    volume = 1.0
    for interval in trace:
        volume *= interval.width
    return volume


def lower_bound(term: Term, traces: Iterable[Box], target: Interval, fuel: int = 100_000) -> float:
    """``lowerBd^T_P(target)`` for a compatible set of interval traces."""
    total = 0.0
    for trace in traces:
        weight = interval_weight_function(term, trace, fuel=fuel)
        value = interval_value_function(term, trace, fuel=fuel)
        if target.contains_interval(value):
            total += _trace_volume(trace) * max(0.0, weight.lo)
    return total


def upper_bound(term: Term, traces: Iterable[Box], target: Interval, fuel: int = 100_000) -> float:
    """``upperBd^T_P(target)`` for an exhaustive set of interval traces.

    Uses the Appendix A.4 rules: an undecided conditional contributes both
    branches with weight multiplied by ``[0, 1]``.  Branches that fail to
    complete contribute ``∞`` (they are genuinely unbounded as far as the
    interval semantics can tell).
    """
    total = 0.0
    for trace in traces:
        volume = _trace_volume(trace)
        for outcome in interval_outcomes(term, trace, mode="both", fuel=fuel):
            if not outcome.complete:
                return math.inf
            if outcome.value.intersects(target):
                total += volume * outcome.weight.hi
                if math.isinf(total):
                    return math.inf
    return total


@dataclass(frozen=True)
class DirectBounds:
    """A pair of guaranteed bounds on ``⟦P⟧(target)``."""

    lower: float
    upper: float
    target: Interval

    def contains(self, value: float) -> bool:
        return self.lower - 1e-12 <= value <= self.upper + 1e-12

    def width(self) -> float:
        return self.upper - self.lower


def direct_bounds(
    term: Term,
    traces: Sequence[Box],
    target: Interval,
    fuel: int = 100_000,
    check_compatibility: bool = True,
) -> DirectBounds:
    """Convenience wrapper computing both bounds from the same trace set."""
    if check_compatibility and not compatible_set(traces):
        raise ValueError("the interval trace set is not pairwise compatible")
    return DirectBounds(
        lower=lower_bound(term, traces, target, fuel=fuel),
        upper=upper_bound(term, traces, target, fuel=fuel),
        target=target,
    )


def grid_interval_traces(sample_count: int, parts: int) -> list[Box]:
    """A compatible and exhaustive set of interval traces of a fixed length.

    Partitions ``[0, 1]^n`` into ``parts^n`` congruent boxes.  For a program
    that terminates using exactly ``sample_count`` samples on (almost) every
    trace, the resulting set is both compatible and exhaustive, so it yields
    sound lower *and* upper bounds.
    """
    return list(unit_box(sample_count).grid([parts] * sample_count))
