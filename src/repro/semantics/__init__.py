"""Operational semantics: concrete traces, interval traces and direct bounds."""

from .bounds import DirectBounds, direct_bounds, grid_interval_traces, lower_bound, upper_bound
from .interval_reduction import (
    IntervalOutcome,
    interval_outcomes,
    interval_value_function,
    interval_weight_function,
)
from .reduction import Config, NotTerminatedError, RunResult, StuckError, run, step, value_and_weight
from .sampler import EvaluationError, ExecutionResult, NonTerminationError, replay, simulate
from .trace import Trace, TraceExhausted, random_trace

__all__ = [
    "Trace",
    "TraceExhausted",
    "random_trace",
    "Config",
    "RunResult",
    "StuckError",
    "NotTerminatedError",
    "step",
    "run",
    "value_and_weight",
    "ExecutionResult",
    "EvaluationError",
    "NonTerminationError",
    "simulate",
    "replay",
    "IntervalOutcome",
    "interval_outcomes",
    "interval_value_function",
    "interval_weight_function",
    "DirectBounds",
    "direct_bounds",
    "lower_bound",
    "upper_bound",
    "grid_interval_traces",
]
