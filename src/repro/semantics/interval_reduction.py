"""Interval trace semantics of SPCF (paper Section 3.2, Fig. 3, Appendix A.4).

Programs are evaluated on *interval traces* — finite sequences of sub-intervals
of ``[0, 1]`` — with interval arithmetic approximating primitive operations.
Two evaluation modes are provided:

* ``strict`` — exactly the rules of Fig. 3: a conditional whose interval guard
  straddles zero gets *stuck* (the trace contributes the trivial bounds
  ``wt ∈ [0, ∞]``, ``val ∈ [-∞, ∞]``).
* ``both`` — the extension of Appendix A.4: an undecided conditional explores
  both branches and multiplies the weight by ``[0, 1]``, which can only
  improve upper bounds.

The evaluator is big-step (environment based) but returns *all* outcomes of
the (possibly branching) reduction, each tagged with how much of the trace it
consumed and whether it completed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional, Union

from ..intervals import Interval, get_primitive
from ..intervals.box import Box
from ..lang.ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)

__all__ = [
    "IntervalOutcome",
    "interval_outcomes",
    "interval_value_function",
    "interval_weight_function",
]

Mode = Literal["strict", "both"]


@dataclass(frozen=True)
class _IClosure:
    param: str
    body: Term
    env: "_IEnv"


@dataclass(frozen=True)
class _IFixClosure:
    fname: str
    param: str
    body: Term
    env: "_IEnv"


IValue = Union[Interval, _IClosure, _IFixClosure]


@dataclass(frozen=True)
class _IEnv:
    name: Optional[str] = None
    value: Optional[IValue] = None
    parent: Optional["_IEnv"] = None

    def bind(self, name: str, value: IValue) -> "_IEnv":
        return _IEnv(name, value, self)

    def lookup(self, name: str) -> IValue:
        env: Optional[_IEnv] = self
        while env is not None:
            if env.name == name:
                assert env.value is not None
                return env.value
            env = env.parent
        raise KeyError(f"unbound variable {name!r}")


_EMPTY_IENV = _IEnv()


@dataclass(frozen=True)
class IntervalOutcome:
    """One outcome of an interval reduction.

    ``complete`` is True when the reduction reached an interval value without
    getting stuck and without running out of fuel; ``consumed`` is the number
    of trace entries used.
    """

    value: Interval
    weight: Interval
    consumed: int
    complete: bool


class _Branching(Exception):
    """Internal: raised in strict mode when a guard interval straddles zero."""


class _OutOfFuel(Exception):
    """Internal: evaluation exceeded the recursion budget."""


def _expect_interval(value: IValue) -> Interval:
    if isinstance(value, Interval):
        return value
    raise TypeError(f"expected an interval value, got {value!r}")


def interval_outcomes(
    term: Term,
    interval_trace: Box,
    mode: Mode = "strict",
    fuel: int = 100_000,
) -> list[IntervalOutcome]:
    """All outcomes of reducing ``term`` on the given interval trace."""
    incomplete = IntervalOutcome(
        value=Interval(-math.inf, math.inf),
        weight=Interval(0.0, math.inf),
        consumed=0,
        complete=False,
    )

    results: list[IntervalOutcome] = []

    def evaluate(
        node: Term,
        env: _IEnv,
        position: int,
        weight: Interval,
        remaining_fuel: int,
    ) -> list[tuple[IValue, int, Interval, int]]:
        """Return a list of ``(value, position, weight, fuel)`` outcomes."""
        if remaining_fuel <= 0:
            raise _OutOfFuel
        remaining_fuel -= 1

        if isinstance(node, Var):
            return [(env.lookup(node.name), position, weight, remaining_fuel)]
        if isinstance(node, Const):
            return [(Interval.point(node.value), position, weight, remaining_fuel)]
        if isinstance(node, IntervalConst):
            return [(node.interval, position, weight, remaining_fuel)]
        if isinstance(node, Lam):
            return [(_IClosure(node.param, node.body, env), position, weight, remaining_fuel)]
        if isinstance(node, Fix):
            return [(_IFixClosure(node.fname, node.param, node.body, env), position, weight, remaining_fuel)]
        if isinstance(node, Sample):
            if position >= interval_trace.dimension:
                raise _Branching  # not enough interval trace entries: stuck
            uniform = interval_trace[position]
            if node.dist is None:
                drawn = uniform
            else:
                drawn = node.distribution().quantile_interval(uniform)
            return [(drawn, position + 1, weight, remaining_fuel)]
        if isinstance(node, Score):
            outcomes = evaluate(node.arg, env, position, weight, remaining_fuel)
            produced = []
            for value, pos, wt, fl in outcomes:
                interval = _expect_interval(value)
                if interval.hi < 0.0:
                    raise _Branching  # definitely negative score: stuck
                clamped = interval.clamp_nonnegative()
                produced.append((clamped, pos, wt * clamped, fl))
            return produced
        if isinstance(node, Prim):
            primitive = get_primitive(node.op)
            outcomes: list[tuple[list[Interval], int, Interval, int]] = [([], position, weight, remaining_fuel)]
            for arg in node.args:
                next_outcomes = []
                for values, pos, wt, fl in outcomes:
                    for value, new_pos, new_wt, new_fl in evaluate(arg, env, pos, wt, fl):
                        next_outcomes.append((values + [_expect_interval(value)], new_pos, new_wt, new_fl))
                outcomes = next_outcomes
            return [
                (primitive.apply_interval(*values), pos, wt, fl)
                for values, pos, wt, fl in outcomes
            ]
        if isinstance(node, If):
            produced = []
            for cond, pos, wt, fl in evaluate(node.cond, env, position, weight, remaining_fuel):
                guard = _expect_interval(cond)
                if guard.hi <= 0.0:
                    produced.extend(evaluate(node.then, env, pos, wt, fl))
                elif guard.lo > 0.0:
                    produced.extend(evaluate(node.orelse, env, pos, wt, fl))
                else:
                    if mode == "strict":
                        raise _Branching
                    slack = Interval(0.0, 1.0)
                    produced.extend(evaluate(node.then, env, pos, wt * slack, fl))
                    produced.extend(evaluate(node.orelse, env, pos, wt * slack, fl))
            return produced
        if isinstance(node, App):
            produced = []
            for func, pos, wt, fl in evaluate(node.func, env, position, weight, remaining_fuel):
                for argument, pos2, wt2, fl2 in evaluate(node.arg, env, pos, wt, fl):
                    if isinstance(func, _IClosure):
                        produced.extend(
                            evaluate(func.body, func.env.bind(func.param, argument), pos2, wt2, fl2)
                        )
                    elif isinstance(func, _IFixClosure):
                        env2 = func.env.bind(func.fname, func).bind(func.param, argument)
                        produced.extend(evaluate(func.body, env2, pos2, wt2, fl2))
                    else:
                        raise TypeError(f"application of non-function {func!r}")
            return produced
        raise TypeError(f"cannot evaluate term {node!r}")

    try:
        raw = evaluate(term, _EMPTY_IENV, 0, Interval.point(1.0), fuel)
    except (_Branching, _OutOfFuel, RecursionError):
        return [incomplete]
    for value, position, weight, _ in raw:
        if isinstance(value, Interval):
            results.append(
                IntervalOutcome(value=value, weight=weight, consumed=position, complete=True)
            )
        else:
            results.append(incomplete)
    return results or [incomplete]


def interval_weight_function(term: Term, interval_trace: Box, fuel: int = 100_000) -> Interval:
    """The paper's ``wt^I_P(t)`` under the strict rules of Fig. 3."""
    outcomes = interval_outcomes(term, interval_trace, mode="strict", fuel=fuel)
    if len(outcomes) == 1 and outcomes[0].complete and outcomes[0].consumed == interval_trace.dimension:
        return outcomes[0].weight
    return Interval(0.0, math.inf)


def interval_value_function(term: Term, interval_trace: Box, fuel: int = 100_000) -> Interval:
    """The paper's ``val^I_P(t)`` under the strict rules of Fig. 3."""
    outcomes = interval_outcomes(term, interval_trace, mode="strict", fuel=fuel)
    if len(outcomes) == 1 and outcomes[0].complete and outcomes[0].consumed == interval_trace.dimension:
        return outcomes[0].value
    return Interval(-math.inf, math.inf)
