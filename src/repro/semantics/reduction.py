"""Standard call-by-value trace semantics of SPCF (paper Fig. 2).

The small-step reduction operates on configurations ``(M, s, w)`` where ``M``
is a term, ``s`` the remaining trace and ``w`` the accumulated weight.  The
module exposes

* :func:`step` — one reduction step,
* :func:`run` — iterate to a value (or failure), yielding ``val_P(s)`` and
  ``wt_P(s)``,
* :func:`value_and_weight` — the paper's ``val_P`` / ``wt_P`` pair.

This substitution-based interpreter exists primarily as the *reference*
semantics: the faster environment-based evaluator in
:mod:`repro.semantics.sampler` is checked against it in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..intervals import get_primitive
from ..lang.ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    is_value,
    substitute,
)
from .trace import Trace

__all__ = ["Config", "StuckError", "NotTerminatedError", "step", "run", "value_and_weight", "RunResult"]


class StuckError(Exception):
    """The configuration is stuck (e.g. ``score`` of a negative number)."""


class NotTerminatedError(Exception):
    """The run did not reach a value with the trace exactly consumed."""


@dataclass(frozen=True)
class Config:
    """A configuration ``(term, remaining trace, weight)``."""

    term: Term
    trace: Trace
    weight: float

    @property
    def is_terminal(self) -> bool:
        return is_value(self.term)


@dataclass(frozen=True)
class RunResult:
    """Outcome of a terminating run."""

    value: float
    weight: float
    steps: int


def _step_term(term: Term, trace: Trace, weight: float) -> Optional[tuple[Term, Trace, float]]:
    """Reduce the leftmost-innermost redex of ``term``; ``None`` if ``term`` is a value."""
    if is_value(term):
        return None

    if isinstance(term, Sample):
        if not trace:
            raise StuckError("sample with an empty trace")
        draw = trace[0]
        if not 0.0 <= draw <= 1.0:
            raise StuckError(f"trace entry {draw} outside [0, 1]")
        value = term.distribution().quantile(draw) if term.dist is not None else draw
        return Const(value), trace[1:], weight

    if isinstance(term, Score):
        inner = _step_term(term.arg, trace, weight)
        if inner is not None:
            new_arg, new_trace, new_weight = inner
            return Score(new_arg), new_trace, new_weight
        argument = _literal_value(term.arg)
        if argument < 0.0:
            raise StuckError(f"score of a negative value {argument}")
        return Const(argument), trace, weight * argument

    if isinstance(term, Prim):
        for index, arg in enumerate(term.args):
            inner = _step_term(arg, trace, weight)
            if inner is not None:
                new_arg, new_trace, new_weight = inner
                new_args = term.args[:index] + (new_arg,) + term.args[index + 1 :]
                return Prim(term.op, new_args), new_trace, new_weight
        primitive = get_primitive(term.op)
        arguments = [_literal_value(arg) for arg in term.args]
        return Const(float(primitive(*arguments))), trace, weight

    if isinstance(term, If):
        inner = _step_term(term.cond, trace, weight)
        if inner is not None:
            new_cond, new_trace, new_weight = inner
            return If(new_cond, term.then, term.orelse), new_trace, new_weight
        condition = _literal_value(term.cond)
        chosen = term.then if condition <= 0.0 else term.orelse
        return chosen, trace, weight

    if isinstance(term, App):
        inner = _step_term(term.func, trace, weight)
        if inner is not None:
            new_func, new_trace, new_weight = inner
            return App(new_func, term.arg), new_trace, new_weight
        inner = _step_term(term.arg, trace, weight)
        if inner is not None:
            new_arg, new_trace, new_weight = inner
            return App(term.func, new_arg), new_trace, new_weight
        func = term.func
        if isinstance(func, Lam):
            return substitute(func.body, func.param, term.arg), trace, weight
        if isinstance(func, Fix):
            unfolded = substitute(func.body, func.param, term.arg)
            unfolded = substitute(unfolded, func.fname, func)
            return unfolded, trace, weight
        raise StuckError(f"application of a non-function value {func!r}")

    raise StuckError(f"cannot reduce term {term!r}")


def _literal_value(term: Term) -> float:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, IntervalConst) and term.interval.is_point:
        return term.interval.lo
    raise StuckError(f"expected a numeric literal, got {term!r}")


def step(config: Config) -> Optional[Config]:
    """One small-step reduction; ``None`` when the configuration is terminal."""
    outcome = _step_term(config.term, config.trace, config.weight)
    if outcome is None:
        return None
    term, trace, weight = outcome
    return Config(term, trace, weight)


def run(term: Term, trace: Trace, max_steps: int = 1_000_000) -> Config:
    """Reduce ``(term, trace, 1)`` to a terminal configuration."""
    config = Config(term, tuple(trace), 1.0)
    for _ in range(max_steps):
        next_config = step(config)
        if next_config is None:
            return config
        config = next_config
    raise NotTerminatedError(f"no value reached within {max_steps} steps")


def value_and_weight(term: Term, trace: Trace, max_steps: int = 1_000_000) -> RunResult:
    """The paper's ``val_P(s)`` and ``wt_P(s)`` for a terminating trace.

    Raises :class:`NotTerminatedError` when the program does not consume the
    trace exactly or does not reach a real value.
    """
    steps = 0
    config = Config(term, tuple(trace), 1.0)
    while not config.is_terminal:
        next_config = step(config)
        if next_config is None:
            break
        config = next_config
        steps += 1
        if steps > max_steps:
            raise NotTerminatedError(f"no value reached within {max_steps} steps")
    if not isinstance(config.term, Const):
        raise NotTerminatedError(f"program reduced to a non-numeric value {config.term!r}")
    if config.trace:
        raise NotTerminatedError("trace not fully consumed")
    return RunResult(value=config.term.value, weight=config.weight, steps=steps)
