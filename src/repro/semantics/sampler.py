"""Efficient big-step evaluation of SPCF programs.

The substitution-based small-step semantics in
:mod:`repro.semantics.reduction` is the reference, but it is too slow to run
tens of thousands of times inside a stochastic inference loop.  This module
provides an environment/closure based evaluator with two entry points:

* :func:`simulate` — draw the trace lazily from a random number generator
  (used by importance sampling, MCMC and SBC), and
* :func:`replay` — run the program on a fixed trace of uniform draws (used by
  trace-space MCMC and by the tests that check agreement with the reference
  semantics).

Both record the sequence of *uniform* draws, the return value and the
accumulated likelihood weight, i.e. exactly ``(s, val_P(s), wt_P(s))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from ..intervals import get_primitive
from ..lang.ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)
from .trace import Trace, TraceExhausted

__all__ = [
    "EvaluationError",
    "NonTerminationError",
    "ExecutionResult",
    "simulate",
    "replay",
    "replay_extending",
]


class EvaluationError(Exception):
    """Raised when evaluation encounters an ill-formed situation."""


class NonTerminationError(Exception):
    """Raised when evaluation exceeds its step or sample budget."""


@dataclass(frozen=True)
class Closure:
    """A lambda value together with its captured environment."""

    param: str
    body: Term
    env: "Environment"


@dataclass(frozen=True)
class FixClosure:
    """A recursive function value."""

    fname: str
    param: str
    body: Term
    env: "Environment"


Value = Union[float, Closure, FixClosure]


@dataclass(frozen=True)
class Environment:
    """A persistent (linked) environment mapping variables to values."""

    name: Optional[str] = None
    value: Optional[Value] = None
    parent: Optional["Environment"] = None

    def bind(self, name: str, value: Value) -> "Environment":
        return Environment(name, value, self)

    def lookup(self, name: str) -> Value:
        env: Optional[Environment] = self
        while env is not None:
            if env.name == name:
                assert env.value is not None
                return env.value
            env = env.parent
        raise EvaluationError(f"unbound variable {name!r}")


EMPTY_ENV = Environment()


@dataclass
class ExecutionResult:
    """Value, weight and trace of one program execution."""

    value: float
    weight: float
    trace: Trace
    log_weight: float

    @property
    def is_feasible(self) -> bool:
        return self.weight > 0.0


@dataclass
class _Context:
    """Mutable evaluation context: the trace source and the weight."""

    draw: Callable[[], float]
    log_weight: float = 0.0
    weight_is_zero: bool = False
    trace: list[float] = field(default_factory=list)
    steps: int = 0
    max_steps: int = 10_000_000

    def record_draw(self) -> float:
        value = self.draw()
        self.trace.append(value)
        return value

    def score(self, value: float) -> None:
        if value < 0.0:
            raise EvaluationError(f"score of a negative value {value}")
        if value == 0.0:
            self.weight_is_zero = True
        else:
            self.log_weight += math.log(value)

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise NonTerminationError(f"evaluation exceeded {self.max_steps} steps")


def _evaluate(term: Term, env: Environment, ctx: _Context) -> Value:
    ctx.tick()
    if isinstance(term, Var):
        return env.lookup(term.name)
    if isinstance(term, Const):
        return term.value
    if isinstance(term, IntervalConst):
        if term.interval.is_point:
            return term.interval.lo
        raise EvaluationError("cannot evaluate a proper interval literal concretely")
    if isinstance(term, Lam):
        return Closure(term.param, term.body, env)
    if isinstance(term, Fix):
        return FixClosure(term.fname, term.param, term.body, env)
    if isinstance(term, Sample):
        uniform = ctx.record_draw()
        if term.dist is None:
            return uniform
        return term.distribution().quantile(uniform)
    if isinstance(term, Score):
        value = _expect_real(_evaluate(term.arg, env, ctx))
        ctx.score(value)
        return value
    if isinstance(term, Prim):
        primitive = get_primitive(term.op)
        arguments = [_expect_real(_evaluate(arg, env, ctx)) for arg in term.args]
        return float(primitive(*arguments))
    if isinstance(term, If):
        condition = _expect_real(_evaluate(term.cond, env, ctx))
        branch = term.then if condition <= 0.0 else term.orelse
        return _evaluate(branch, env, ctx)
    if isinstance(term, App):
        func = _evaluate(term.func, env, ctx)
        argument = _evaluate(term.arg, env, ctx)
        return _apply(func, argument, ctx)
    raise EvaluationError(f"cannot evaluate term {term!r}")


def _apply(func: Value, argument: Value, ctx: _Context) -> Value:
    if isinstance(func, Closure):
        return _evaluate(func.body, func.env.bind(func.param, argument), ctx)
    if isinstance(func, FixClosure):
        env = func.env.bind(func.fname, func).bind(func.param, argument)
        return _evaluate(func.body, env, ctx)
    raise EvaluationError(f"application of a non-function value {func!r}")


def _expect_real(value: Value) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    raise EvaluationError(f"expected a real number, got {value!r}")


def simulate(
    term: Term,
    rng: np.random.Generator,
    max_steps: int = 10_000_000,
) -> ExecutionResult:
    """Run the program once, drawing fresh uniform samples from ``rng``."""
    ctx = _Context(draw=lambda: float(rng.random()), max_steps=max_steps)
    value = _expect_real(_evaluate(term, EMPTY_ENV, ctx))
    weight = 0.0 if ctx.weight_is_zero else math.exp(ctx.log_weight)
    log_weight = -math.inf if ctx.weight_is_zero else ctx.log_weight
    return ExecutionResult(value=value, weight=weight, trace=tuple(ctx.trace), log_weight=log_weight)


def replay_extending(
    term: Term,
    trace: Trace,
    rng: np.random.Generator,
    max_steps: int = 10_000_000,
) -> ExecutionResult:
    """Replay a trace prefix, drawing fresh uniforms once it is exhausted.

    This is the re-execution primitive of lightweight trace-space MCMC: a
    proposal modifies part of the trace, and any samples the new control flow
    needs beyond the recorded prefix are drawn from the prior.
    """
    position = 0

    def draw() -> float:
        nonlocal position
        if position < len(trace):
            value = trace[position]
        else:
            value = float(rng.random())
        position += 1
        return value

    ctx = _Context(draw=draw, max_steps=max_steps)
    value = _expect_real(_evaluate(term, EMPTY_ENV, ctx))
    weight = 0.0 if ctx.weight_is_zero else math.exp(ctx.log_weight)
    log_weight = -math.inf if ctx.weight_is_zero else ctx.log_weight
    return ExecutionResult(value=value, weight=weight, trace=tuple(ctx.trace), log_weight=log_weight)


def replay(
    term: Term,
    trace: Trace,
    require_exact: bool = True,
    max_steps: int = 10_000_000,
) -> ExecutionResult:
    """Run the program on a fixed trace of uniform draws.

    With ``require_exact`` the trace must be consumed entirely (matching the
    paper's definition of a terminating trace); otherwise surplus entries are
    ignored, which is convenient for trace-space MCMC proposals.
    """
    position = 0

    def draw() -> float:
        nonlocal position
        if position >= len(trace):
            raise TraceExhausted(f"trace of length {len(trace)} exhausted")
        value = trace[position]
        position += 1
        return value

    ctx = _Context(draw=draw, max_steps=max_steps)
    value = _expect_real(_evaluate(term, EMPTY_ENV, ctx))
    if require_exact and position != len(trace):
        raise TraceExhausted(
            f"trace has {len(trace)} entries but only {position} were consumed"
        )
    weight = 0.0 if ctx.weight_is_zero else math.exp(ctx.log_weight)
    log_weight = -math.inf if ctx.weight_is_zero else ctx.log_weight
    return ExecutionResult(value=value, weight=weight, trace=tuple(ctx.trace), log_weight=log_weight)
