"""Concrete traces and the trace space.

A (concrete) trace ``s ∈ T = ⋃_n [0,1]^n`` predetermines the probabilistic
choices of an SPCF execution (paper Section 2.3).  Every ``sample`` consumes
one entry of the trace; non-uniform draws consume a uniform entry and map it
through the distribution's quantile function, which keeps the trace space and
its measure exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Trace", "TraceExhausted", "random_trace", "trace_volume"]

Trace = tuple[float, ...]


class TraceExhausted(Exception):
    """Raised when an execution needs more samples than the trace provides."""


def random_trace(length: int, rng: np.random.Generator) -> Trace:
    """A uniformly random trace of the given length."""
    return tuple(float(u) for u in rng.random(length))


def trace_volume(lengths_and_widths: Iterable[float]) -> float:
    """Product of interval widths — the volume of an interval trace."""
    volume = 1.0
    for width in lengths_and_widths:
        volume *= width
    return volume


@dataclass
class TraceReader:
    """Sequential reader over a fixed trace."""

    trace: Sequence[float]
    position: int = 0

    def next(self) -> float:
        if self.position >= len(self.trace):
            raise TraceExhausted(
                f"trace of length {len(self.trace)} exhausted at position {self.position}"
            )
        value = self.trace[self.position]
        self.position += 1
        return value

    @property
    def fully_consumed(self) -> bool:
        return self.position == len(self.trace)

    @property
    def consumed(self) -> int:
        return self.position
