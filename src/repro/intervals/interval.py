"""Interval arithmetic over the extended reals.

This module implements the interval domain used throughout the GuBPI
reproduction (paper Section 3.1 and Appendix A):

* closed intervals ``[a, b]`` with endpoints in ``R ∪ {-inf, +inf}``,
* the interval lattice (meet, join, a bottom element for the empty interval),
* lifted arithmetic (``+``, ``-``, ``*``, ``/``, ``min``, ``max``, ``abs``,
  monotone function lifting),
* the widening operator used by the constraint solver of the weight-aware
  interval type system (Appendix D.3).

All operations are *outward conservative*: for every real operation ``f`` and
inputs ``x_i`` contained in the argument intervals, ``f(x_1, ..., x_n)`` is
contained in the result interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

__all__ = ["Interval", "EMPTY", "REALS", "UNIT", "NON_NEGATIVE", "ONE", "ZERO"]

_INF = math.inf


def _mul(a: float, b: float) -> float:
    """Multiply extended reals with the convention ``0 * inf = 0``.

    The convention matches measure-theoretic usage: a zero-volume region with
    infinite weight contributes nothing to an integral.
    """
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` of extended reals.

    The empty interval is represented by the module-level constant ``EMPTY``
    (with ``lo > hi``); all constructors besides :meth:`empty` require
    ``lo <= hi``.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi and not (self.lo == _INF and self.hi == -_INF):
            raise ValueError(f"invalid interval endpoints [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def empty() -> "Interval":
        """The empty interval (bottom element of the lattice)."""
        return EMPTY

    @staticmethod
    def reals() -> "Interval":
        """The whole extended real line ``[-inf, inf]``."""
        return REALS

    @staticmethod
    def hull_of(values: Iterable[float]) -> "Interval":
        """Smallest interval containing every value in ``values``."""
        values = list(values)
        if not values:
            return EMPTY
        return Interval(min(values), max(values))

    # ------------------------------------------------------------------
    # Predicates and accessors
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return not self.is_empty and math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def width(self) -> float:
        """Length of the interval (0 for points, ``inf`` for unbounded ones)."""
        if self.is_empty:
            return 0.0
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        if self.is_empty:
            raise ValueError("empty interval has no midpoint")
        if not self.is_bounded:
            if math.isinf(self.lo) and math.isinf(self.hi):
                return 0.0
            return self.lo if math.isinf(self.hi) else self.hi
        return 0.5 * (self.lo + self.hi)

    def __contains__(self, value: float) -> bool:
        return (not self.is_empty) and self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """``other ⊑ self`` (interval inclusion)."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        if self.is_empty or other.is_empty:
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    def almost_disjoint(self, other: "Interval") -> bool:
        """True when the intervals overlap in at most a single point."""
        if self.is_empty or other.is_empty:
            return True
        return self.hi <= other.lo or other.hi <= self.lo

    def strictly_positive(self) -> bool:
        return not self.is_empty and self.lo > 0

    def non_positive(self) -> bool:
        return not self.is_empty and self.hi <= 0

    # ------------------------------------------------------------------
    # Lattice structure
    # ------------------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (interval hull)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        """Greatest lower bound (intersection); empty when disjoint."""
        if self.is_empty or other.is_empty:
            return EMPTY
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return EMPTY
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """The widening operator of Appendix D.3.

        Keeps a bound only when the new interval does not extend past it,
        otherwise jumps straight to infinity in that direction.  Guarantees
        that every ascending chain produced by repeated widening stabilises.
        """
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = self.lo if self.lo <= other.lo else -_INF
        hi = self.hi if self.hi >= other.hi else _INF
        return Interval(lo, hi)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __neg__(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        return Interval(-self.hi, -self.lo)

    def __add__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def __sub__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __rsub__(self, other: "Interval | float") -> "Interval":
        return _as_interval(other) - self

    def __mul__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        products = [
            _mul(self.lo, other.lo),
            _mul(self.lo, other.hi),
            _mul(self.hi, other.lo),
            _mul(self.hi, other.hi),
        ]
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        if 0.0 in other:
            # Division by an interval containing zero is unbounded unless the
            # numerator is exactly zero.
            if self.lo == 0.0 and self.hi == 0.0:
                return Interval.point(0.0)
            return REALS
        return self * Interval(1.0 / other.hi, 1.0 / other.lo)

    def __rtruediv__(self, other: "Interval | float") -> "Interval":
        return _as_interval(other) / self

    def abs(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        if 0.0 in self:
            return Interval(0.0, max(abs(self.lo), abs(self.hi)))
        return Interval(min(abs(self.lo), abs(self.hi)), max(abs(self.lo), abs(self.hi)))

    def min_with(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def clamp_nonnegative(self) -> "Interval":
        """Intersection with ``[0, inf]`` (used by ``score``)."""
        return self.meet(NON_NEGATIVE)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a non-negative scalar."""
        if factor < 0:
            raise ValueError("scale expects a non-negative factor")
        return self * Interval.point(factor)

    def monotone_image(
        self, func: Callable[[float], float], increasing: bool = True
    ) -> "Interval":
        """Image of the interval under a monotone function.

        ``func`` is evaluated at the endpoints only; infinite endpoints are
        mapped through limits by the caller-supplied function (which should
        handle ``inf`` inputs gracefully).
        """
        if self.is_empty:
            return EMPTY
        lo, hi = func(self.lo), func(self.hi)
        if not increasing:
            lo, hi = hi, lo
        return Interval(min(lo, hi), max(lo, hi))

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, parts: int) -> list["Interval"]:
        """Partition a bounded interval into ``parts`` equal-width pieces."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        if self.is_empty:
            return []
        if parts == 1 or self.is_point:
            return [self]
        if not self.is_bounded:
            raise ValueError("cannot split an unbounded interval into equal parts")
        step = self.width / parts
        cuts = [self.lo + i * step for i in range(parts)] + [self.hi]
        return [Interval(cuts[i], cuts[i + 1]) for i in range(parts)]

    def sample_points(self, count: int) -> Iterator[float]:
        """Evenly spaced points inside a bounded interval (for testing)."""
        if self.is_empty or count <= 0:
            return iter(())
        if self.is_point or count == 1:
            return iter((self.lo,))
        step = self.width / (count - 1)
        return iter(self.lo + i * step for i in range(count))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_empty:
            return "Interval(empty)"
        return f"[{self.lo:g}, {self.hi:g}]"


def _as_interval(value: "Interval | float") -> Interval:
    if isinstance(value, Interval):
        return value
    return Interval.point(float(value))


EMPTY = Interval(_INF, -_INF)
REALS = Interval(-_INF, _INF)
UNIT = Interval(0.0, 1.0)
NON_NEGATIVE = Interval(0.0, _INF)
ONE = Interval(1.0, 1.0)
ZERO = Interval(0.0, 0.0)
