"""Primitive operations and their interval liftings.

SPCF programs apply *primitive operations* ``f : R^n -> R`` (paper
Section 2.2).  The interval trace semantics and the weight-aware type system
both need a sound over-approximation ``f^I : I^n -> I`` of every primitive
(Section 3.1).  This module provides:

* the :class:`Primitive` record bundling the concrete function with its
  interval lifting, and
* a global, extensible :class:`PrimitiveRegistry` pre-populated with the
  arithmetic and transcendental operations used by the benchmark programs.

Probability-density primitives (``normal_pdf`` and friends) are registered by
:mod:`repro.distributions`, which keeps this module free of dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable

from .interval import EMPTY, REALS, Interval

__all__ = ["Primitive", "PrimitiveRegistry", "REGISTRY", "get_primitive"]


@dataclass(frozen=True)
class Primitive:
    """A primitive operation together with its interval abstraction.

    Attributes:
        name: identifier used in the AST (``Prim(name, args)``).
        arity: number of real arguments.
        concrete: the function on floats.
        interval: a sound over-approximation on intervals.
        affine: whether the function is affine in its arguments; the linear
            path analyser (Section 6.4) relies on this flag when extracting
            linear sub-expressions.
    """

    name: str
    arity: int
    concrete: Callable[..., float]
    interval: Callable[..., Interval]
    affine: bool = False

    def __call__(self, *args: float) -> float:
        return self.concrete(*args)

    def apply_interval(self, *args: Interval) -> Interval:
        if any(arg.is_empty for arg in args):
            return EMPTY
        return self.interval(*args)


class PrimitiveRegistry:
    """A mutable mapping from primitive names to :class:`Primitive` records."""

    def __init__(self) -> None:
        self._primitives: Dict[str, Primitive] = {}

    def register(self, primitive: Primitive, overwrite: bool = False) -> Primitive:
        if primitive.name in self._primitives and not overwrite:
            raise ValueError(f"primitive {primitive.name!r} already registered")
        self._primitives[primitive.name] = primitive
        return primitive

    def get(self, name: str) -> Primitive:
        try:
            return self._primitives[name]
        except KeyError as exc:
            raise KeyError(f"unknown primitive operation {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._primitives

    def names(self) -> Iterable[str]:
        return self._primitives.keys()


REGISTRY = PrimitiveRegistry()


def get_primitive(name: str) -> Primitive:
    """Look up a primitive in the global registry."""
    return REGISTRY.get(name)


# ----------------------------------------------------------------------
# Interval liftings for the built-in operations
# ----------------------------------------------------------------------

def _interval_add(a: Interval, b: Interval) -> Interval:
    return a + b


def _interval_sub(a: Interval, b: Interval) -> Interval:
    return a - b


def _interval_mul(a: Interval, b: Interval) -> Interval:
    return a * b


def _interval_div(a: Interval, b: Interval) -> Interval:
    return a / b


def _interval_neg(a: Interval) -> Interval:
    return -a


def _interval_abs(a: Interval) -> Interval:
    return a.abs()


def _interval_min(a: Interval, b: Interval) -> Interval:
    return a.min_with(b)


def _interval_max(a: Interval, b: Interval) -> Interval:
    return a.max_with(b)


def _safe_exp(x: float) -> float:
    if x == math.inf:
        return math.inf
    if x == -math.inf:
        return 0.0
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def _interval_exp(a: Interval) -> Interval:
    return a.monotone_image(_safe_exp, increasing=True)


def _safe_log(x: float) -> float:
    if x <= 0.0:
        return -math.inf
    if x == math.inf:
        return math.inf
    return math.log(x)


def _interval_log(a: Interval) -> Interval:
    # log is only defined for positive reals; conservatively map non-positive
    # parts of the interval to -inf.
    return a.monotone_image(_safe_log, increasing=True)


def _safe_sqrt(x: float) -> float:
    if x <= 0.0:
        return 0.0
    if x == math.inf:
        return math.inf
    return math.sqrt(x)


def _interval_sqrt(a: Interval) -> Interval:
    return a.monotone_image(_safe_sqrt, increasing=True)


def _interval_square(a: Interval) -> Interval:
    return a * a if not (0.0 in a) else Interval(0.0, max(a.lo * a.lo, a.hi * a.hi))


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = _safe_exp(-x)
        return 1.0 / (1.0 + z)
    z = _safe_exp(x)
    return z / (1.0 + z)


def _interval_sigmoid(a: Interval) -> Interval:
    return a.monotone_image(_sigmoid, increasing=True)


def _floor(x: float) -> float:
    if math.isinf(x):
        return x
    return float(math.floor(x))


def _interval_floor(a: Interval) -> Interval:
    return a.monotone_image(_floor, increasing=True)


def _interval_pow_nat(a: Interval, b: Interval) -> Interval:
    """``a ** b`` for a constant natural-number exponent interval."""
    if not b.is_point or b.lo < 0 or b.lo != int(b.lo):
        return REALS
    exponent = int(b.lo)
    result = Interval.point(1.0)
    for _ in range(exponent):
        result = result * a
    return result


def _register_builtins() -> None:
    builtins = [
        Primitive("add", 2, lambda x, y: x + y, _interval_add, affine=True),
        Primitive("sub", 2, lambda x, y: x - y, _interval_sub, affine=True),
        Primitive("mul", 2, lambda x, y: x * y, _interval_mul),
        Primitive("div", 2, lambda x, y: x / y if y != 0 else math.inf, _interval_div),
        Primitive("neg", 1, lambda x: -x, _interval_neg, affine=True),
        Primitive("abs", 1, abs, _interval_abs),
        Primitive("min", 2, min, _interval_min),
        Primitive("max", 2, max, _interval_max),
        Primitive("exp", 1, _safe_exp, _interval_exp),
        Primitive("log", 1, _safe_log, _interval_log),
        Primitive("sqrt", 1, _safe_sqrt, _interval_sqrt),
        Primitive("square", 1, lambda x: x * x, _interval_square),
        Primitive("sigmoid", 1, _sigmoid, _interval_sigmoid),
        Primitive("floor", 1, _floor, _interval_floor),
        Primitive("pow_nat", 2, lambda x, n: x ** int(n), _interval_pow_nat),
    ]
    for primitive in builtins:
        if primitive.name not in REGISTRY:
            REGISTRY.register(primitive)


_register_builtins()
