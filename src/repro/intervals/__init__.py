"""Interval arithmetic, boxes and the primitive-operation registry."""

from .box import Box, compatible_set, grid_boxes, unit_box
from .functions import REGISTRY, Primitive, PrimitiveRegistry, get_primitive
from .interval import EMPTY, NON_NEGATIVE, ONE, REALS, UNIT, ZERO, Interval

__all__ = [
    "Interval",
    "Box",
    "unit_box",
    "grid_boxes",
    "compatible_set",
    "Primitive",
    "PrimitiveRegistry",
    "REGISTRY",
    "get_primitive",
    "EMPTY",
    "REALS",
    "UNIT",
    "NON_NEGATIVE",
    "ONE",
    "ZERO",
]
