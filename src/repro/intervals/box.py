"""Axis-aligned boxes (Cartesian products of intervals).

Boxes play two roles in the reproduction:

* *interval traces* (Section 3.2) — a finite sequence of ``[0, 1]`` sub-intervals,
  each entry bounding one sampled value; and
* *score boxes* (Section 6.4) — each entry bounding one linear score
  sub-expression in the optimised linear semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .interval import Interval

__all__ = ["Box", "unit_box", "grid_boxes"]


@dataclass(frozen=True)
class Box:
    """An ``n``-dimensional box, i.e. a tuple of intervals."""

    intervals: tuple[Interval, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "intervals", tuple(self.intervals))

    # ------------------------------------------------------------------
    @staticmethod
    def of(*intervals: Interval) -> "Box":
        return Box(tuple(intervals))

    @property
    def dimension(self) -> int:
        return len(self.intervals)

    @property
    def is_empty(self) -> bool:
        return any(interval.is_empty for interval in self.intervals)

    def __getitem__(self, index: int) -> Interval:
        return self.intervals[index]

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    # ------------------------------------------------------------------
    def volume(self) -> float:
        """Lebesgue volume of the box (paper's ``vol``); 1 for the empty product."""
        if self.is_empty:
            return 0.0
        result = 1.0
        for interval in self.intervals:
            result *= interval.width
        return result

    def contains_point(self, point: Sequence[float]) -> bool:
        """Pointwise membership: the refinement relation ``s ◁ t`` of Section 3.2."""
        if len(point) != self.dimension:
            return False
        return all(value in interval for value, interval in zip(point, self.intervals))

    def contains_box(self, other: "Box") -> bool:
        if other.dimension != self.dimension:
            return False
        return all(
            mine.contains_interval(theirs)
            for mine, theirs in zip(self.intervals, other.intervals)
        )

    def intersect(self, other: "Box") -> "Box":
        if other.dimension != self.dimension:
            raise ValueError("dimension mismatch")
        return Box(tuple(a.meet(b) for a, b in zip(self.intervals, other.intervals)))

    def compatible_with(self, other: "Box") -> bool:
        """Compatibility of interval traces (Section 3.3).

        Two traces are compatible when some shared position holds almost
        disjoint intervals; traces of different lengths compare only their
        common prefix.
        """
        prefix = min(self.dimension, other.dimension)
        return any(
            self.intervals[i].almost_disjoint(other.intervals[i]) for i in range(prefix)
        )

    def extend(self, interval: Interval) -> "Box":
        return Box(self.intervals + (interval,))

    def replace(self, index: int, interval: Interval) -> "Box":
        parts = list(self.intervals)
        parts[index] = interval
        return Box(tuple(parts))

    def midpoint(self) -> tuple[float, ...]:
        return tuple(interval.midpoint for interval in self.intervals)

    def corners(self) -> Iterator[tuple[float, ...]]:
        """All corner points of a bounded box."""
        axes = [(interval.lo, interval.hi) for interval in self.intervals]
        seen: set[tuple[float, ...]] = set()
        for corner in itertools.product(*axes):
            if corner not in seen:
                seen.add(corner)
                yield corner

    def split_dimension(self, index: int, parts: int) -> list["Box"]:
        return [self.replace(index, piece) for piece in self.intervals[index].split(parts)]

    def grid(self, parts_per_dimension: Sequence[int]) -> Iterator["Box"]:
        """Partition the box into a grid of sub-boxes."""
        if len(parts_per_dimension) != self.dimension:
            raise ValueError("parts_per_dimension length mismatch")
        pieces = [
            interval.split(parts)
            for interval, parts in zip(self.intervals, parts_per_dimension)
        ]
        for combo in itertools.product(*pieces):
            yield Box(tuple(combo))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Box(" + " x ".join(repr(interval) for interval in self.intervals) + ")"


def unit_box(dimension: int) -> Box:
    """The unit hypercube ``[0, 1]^n`` (the domain of ``n`` uniform samples)."""
    return Box(tuple(Interval(0.0, 1.0) for _ in range(dimension)))


def grid_boxes(box: Box, parts: int | Sequence[int]) -> list[Box]:
    """Convenience wrapper around :meth:`Box.grid` with a uniform split count."""
    if isinstance(parts, int):
        parts = [parts] * box.dimension
    return list(box.grid(parts))


def compatible_set(boxes: Iterable[Box]) -> bool:
    """Check pairwise compatibility of a set of interval traces."""
    boxes = list(boxes)
    for i, first in enumerate(boxes):
        for second in boxes[i + 1 :]:
            if not first.compatible_with(second):
                return False
    return True
