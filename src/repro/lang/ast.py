"""Abstract syntax of SPCF (statistical PCF).

The term language follows paper Section 2.2:

.. code-block:: text

    V ::= x | r | λx. M | μφ x. M
    M ::= V | M N | if(M, N, P) | f(M1, ..., M_|f|) | sample | score(M)

Two extensions are provided, both used by the paper itself:

* **Interval literals** ``[a, b]`` (Section 3.2, "Interval SPCF"), produced by
  the ``approxFix`` over-approximation and by interval reduction; and
* **Distribution-annotated samples** ``sample D`` (Appendix E.1), i.e. a draw
  from a non-uniform primitive distribution.  A plain ``sample`` is a draw
  from ``Uniform(0, 1)``.

Terms are immutable dataclasses; helpers for free variables, capture-avoiding
substitution and subterm traversal live here as well.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..distributions import Distribution, Uniform
from ..intervals import Interval, get_primitive

__all__ = [
    "Term",
    "Var",
    "Const",
    "IntervalConst",
    "Lam",
    "Fix",
    "App",
    "If",
    "Prim",
    "Sample",
    "Score",
    "free_variables",
    "substitute",
    "subterms",
    "contains_fixpoint",
    "is_value",
]


@dataclass(frozen=True)
class Term:
    """Base class of all SPCF terms."""

    def children(self) -> tuple["Term", ...]:
        return ()


@dataclass(frozen=True)
class Var(Term):
    """A variable occurrence."""

    name: str


@dataclass(frozen=True)
class Const(Term):
    """A real-valued literal."""

    value: float


@dataclass(frozen=True)
class IntervalConst(Term):
    """An interval literal of Interval SPCF (Section 3.2)."""

    interval: Interval


@dataclass(frozen=True)
class Lam(Term):
    """Lambda abstraction ``λ param. body``."""

    param: str
    body: Term

    def children(self) -> tuple[Term, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Fix(Term):
    """Recursive function ``μ fname param. body`` (the fixpoint construct)."""

    fname: str
    param: str
    body: Term

    def children(self) -> tuple[Term, ...]:
        return (self.body,)


@dataclass(frozen=True)
class App(Term):
    """Application ``func arg``."""

    func: Term
    arg: Term

    def children(self) -> tuple[Term, ...]:
        return (self.func, self.arg)


@dataclass(frozen=True)
class If(Term):
    """Branching ``if(cond, then, orelse)``: ``then`` when ``cond <= 0``."""

    cond: Term
    then: Term
    orelse: Term

    def children(self) -> tuple[Term, ...]:
        return (self.cond, self.then, self.orelse)


@dataclass(frozen=True)
class Prim(Term):
    """Application of a primitive operation ``f(args...)``."""

    op: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        primitive = get_primitive(self.op)
        if primitive.arity != len(self.args):
            raise ValueError(
                f"primitive {self.op!r} expects {primitive.arity} arguments, "
                f"got {len(self.args)}"
            )

    def children(self) -> tuple[Term, ...]:
        return self.args


@dataclass(frozen=True)
class Sample(Term):
    """A random draw.

    ``dist is None`` means the standard SPCF ``sample`` (uniform on [0, 1]);
    otherwise the draw comes from the given primitive distribution, which the
    analysers treat natively (Appendix E.1) and the stochastic samplers draw
    from directly.
    """

    dist: Optional[Distribution] = None

    def distribution(self) -> Distribution:
        return self.dist if self.dist is not None else Uniform(0.0, 1.0)


@dataclass(frozen=True)
class Score(Term):
    """``score(arg)``: multiply the weight of the current execution by ``arg``."""

    arg: Term

    def children(self) -> tuple[Term, ...]:
        return (self.arg,)


# ----------------------------------------------------------------------
# Traversals
# ----------------------------------------------------------------------

def subterms(term: Term) -> Iterator[Term]:
    """All subterms of ``term`` in pre-order (including ``term`` itself)."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def contains_fixpoint(term: Term) -> bool:
    """True when the term contains a ``μ`` fixpoint anywhere."""
    return any(isinstance(sub, Fix) for sub in subterms(term))


def is_value(term: Term) -> bool:
    """Values are variables, literals, abstractions and fixpoints."""
    return isinstance(term, (Var, Const, IntervalConst, Lam, Fix))


def free_variables(term: Term) -> frozenset[str]:
    """The free variables of a term."""
    if isinstance(term, Var):
        return frozenset({term.name})
    if isinstance(term, Lam):
        return free_variables(term.body) - {term.param}
    if isinstance(term, Fix):
        return free_variables(term.body) - {term.param, term.fname}
    result: frozenset[str] = frozenset()
    for child in term.children():
        result |= free_variables(child)
    return result


_fresh_counter = itertools.count()


def _fresh_name(base: str, avoid: frozenset[str]) -> str:
    candidate = f"{base}#{next(_fresh_counter)}"
    while candidate in avoid:
        candidate = f"{base}#{next(_fresh_counter)}"
    return candidate


def substitute(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding substitution ``term[replacement / name]``."""
    if isinstance(term, Var):
        return replacement if term.name == name else term
    if isinstance(term, (Const, IntervalConst, Sample)):
        return term
    if isinstance(term, Lam):
        if term.param == name:
            return term
        if term.param in free_variables(replacement):
            fresh = _fresh_name(term.param, free_variables(term.body) | free_variables(replacement))
            renamed = substitute(term.body, term.param, Var(fresh))
            return Lam(fresh, substitute(renamed, name, replacement))
        return Lam(term.param, substitute(term.body, name, replacement))
    if isinstance(term, Fix):
        if name in (term.param, term.fname):
            return term
        replacement_free = free_variables(replacement)
        param, fname, body = term.param, term.fname, term.body
        if param in replacement_free:
            fresh = _fresh_name(param, free_variables(body) | replacement_free | {fname})
            body = substitute(body, param, Var(fresh))
            param = fresh
        if fname in replacement_free:
            fresh = _fresh_name(fname, free_variables(body) | replacement_free | {param})
            body = substitute(body, fname, Var(fresh))
            fname = fresh
        return Fix(fname, param, substitute(body, name, replacement))
    if isinstance(term, App):
        return App(substitute(term.func, name, replacement), substitute(term.arg, name, replacement))
    if isinstance(term, If):
        return If(
            substitute(term.cond, name, replacement),
            substitute(term.then, name, replacement),
            substitute(term.orelse, name, replacement),
        )
    if isinstance(term, Prim):
        return Prim(term.op, tuple(substitute(arg, name, replacement) for arg in term.args))
    if isinstance(term, Score):
        return Score(substitute(term.arg, name, replacement))
    raise TypeError(f"unknown term {term!r}")
