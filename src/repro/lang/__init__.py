"""The SPCF language: abstract syntax, builder eDSL, parser and simple types."""

from . import builder
from .ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    contains_fixpoint,
    free_variables,
    is_value,
    substitute,
    subterms,
)
from .parser import ParseError, parse
from .pretty import pretty
from .types import (
    REAL,
    FunType,
    RealType,
    SimpleType,
    TypeAnnotations,
    TypeError_,
    infer_types,
    type_of_program,
)

__all__ = [
    "Term",
    "Var",
    "Const",
    "IntervalConst",
    "Lam",
    "Fix",
    "App",
    "If",
    "Prim",
    "Sample",
    "Score",
    "free_variables",
    "substitute",
    "subterms",
    "contains_fixpoint",
    "is_value",
    "builder",
    "parse",
    "ParseError",
    "pretty",
    "SimpleType",
    "RealType",
    "FunType",
    "REAL",
    "TypeError_",
    "TypeAnnotations",
    "infer_types",
    "type_of_program",
]
