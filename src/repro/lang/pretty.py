"""Pretty printing of SPCF terms.

Produces a compact, ML-like rendering that is convenient for debugging and
for the documentation examples.  ``let``-sugar (a beta redex with a lambda)
is re-sugared during printing.
"""

from __future__ import annotations

from .ast import App, Const, Fix, If, IntervalConst, Lam, Prim, Sample, Score, Term, Var

__all__ = ["pretty"]

_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


def pretty(term: Term, indent: int = 0) -> str:
    """Render a term as a readable string."""
    pad = "  " * indent
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return f"{term.value:g}"
    if isinstance(term, IntervalConst):
        return f"[{term.interval.lo:g}, {term.interval.hi:g}]"
    if isinstance(term, Sample):
        if term.dist is None:
            return "sample"
        return f"sample {term.dist!r}"
    if isinstance(term, Score):
        return f"score({pretty(term.arg)})"
    if isinstance(term, Prim):
        if term.op in _INFIX and len(term.args) == 2:
            left, right = (pretty(arg) for arg in term.args)
            return f"({left} {_INFIX[term.op]} {right})"
        args = ", ".join(pretty(arg) for arg in term.args)
        return f"{term.op}({args})"
    if isinstance(term, If):
        return (
            f"if ({pretty(term.cond)} <= 0)\n{pad}  then {pretty(term.then, indent + 1)}"
            f"\n{pad}  else {pretty(term.orelse, indent + 1)}"
        )
    if isinstance(term, Lam):
        return f"(λ{term.param}. {pretty(term.body, indent)})"
    if isinstance(term, Fix):
        return f"(μ{term.fname} {term.param}. {pretty(term.body, indent)})"
    if isinstance(term, App):
        if isinstance(term.func, Lam):
            # Re-sugar `let`.
            binder = term.func
            return (
                f"let {binder.param} = {pretty(term.arg)} in\n"
                f"{pad}{pretty(binder.body, indent)}"
            )
        return f"({pretty(term.func)} {pretty(term.arg)})"
    raise TypeError(f"unknown term {term!r}")
