"""An s-expression surface syntax for SPCF.

The parser is a convenience for writing models in text form (and for tests);
the benchmark suite itself constructs programs through the builder eDSL.

Grammar (s-expressions)::

    expr ::= NUMBER | SYMBOL
           | (let SYMBOL expr expr)
           | (lam SYMBOL expr)         | (fix SYMBOL SYMBOL expr)
           | (app expr expr+)          | (if expr expr expr)
           | (sample) | (sample DIST-NAME NUMBER*)
           | (score expr)              | (observe DIST-NAME expr* expr)
           | (choice NUMBER expr expr) | (interval NUMBER NUMBER)
           | (OP expr*)                -- any registered primitive, or + - * /

``(if c a b)`` takes the first branch when ``c <= 0``, matching SPCF.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..distributions import Beta, Cauchy, Distribution, Exponential, Gamma, Normal, Uniform
from ..intervals import REGISTRY, Interval
from .ast import App, Const, Fix, If, IntervalConst, Lam, Prim, Sample, Score, Term, Var
from .builder import choice, let, observe, to_term

__all__ = ["parse", "ParseError"]


class ParseError(Exception):
    """Raised on malformed input."""


_OP_ALIASES = {"+": "add", "-": "sub", "*": "mul", "/": "div"}

_DISTRIBUTIONS: dict[str, type] = {
    "uniform": Uniform,
    "normal": Normal,
    "beta": Beta,
    "exponential": Exponential,
    "gamma": Gamma,
    "cauchy": Cauchy,
}


def _tokenize(source: str) -> Iterator[str]:
    token = ""
    for char in source:
        if char in "()":
            if token:
                yield token
                token = ""
            yield char
        elif char.isspace():
            if token:
                yield token
                token = ""
        else:
            token += char
    if token:
        yield token


def _read(tokens: list[str], position: int) -> tuple[object, int]:
    if position >= len(tokens):
        raise ParseError("unexpected end of input")
    token = tokens[position]
    if token == "(":
        items: list[object] = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            item, position = _read(tokens, position)
            items.append(item)
        if position >= len(tokens):
            raise ParseError("missing closing parenthesis")
        return items, position + 1
    if token == ")":
        raise ParseError("unexpected ')'")
    return token, position + 1


def _as_number(token: object) -> float:
    try:
        return float(token)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ParseError(f"expected a number, got {token!r}") from exc


def _as_binder(token: object) -> str:
    """A binder must be a symbol, not a number."""
    if not isinstance(token, str):
        raise ParseError(f"expected a variable name, got {token!r}")
    try:
        float(token)
    except ValueError:
        return token
    raise ParseError(f"variable names must not be numbers: {token!r}")


def _make_distribution(name: str, params: Sequence[float]) -> Distribution:
    if name not in _DISTRIBUTIONS:
        raise ParseError(f"unknown distribution {name!r}")
    try:
        return _DISTRIBUTIONS[name](*params)
    except TypeError as exc:
        raise ParseError(f"bad parameters for distribution {name!r}: {params}") from exc


def _build(node: object) -> Term:
    if isinstance(node, str):
        try:
            return Const(float(node))
        except ValueError:
            return Var(node)
    if not isinstance(node, list) or not node:
        raise ParseError(f"cannot parse {node!r}")
    head = node[0]
    if not isinstance(head, str):
        # Application of a compound expression.
        result = _build(head)
        for arg in node[1:]:
            result = App(result, _build(arg))
        return result
    rest = node[1:]
    if head == "let":
        if len(rest) != 3:
            raise ParseError("let expects (let name value body)")
        return let(_as_binder(rest[0]), _build(rest[1]), _build(rest[2]))
    if head == "lam":
        if len(rest) != 2:
            raise ParseError("lam expects (lam param body)")
        return Lam(_as_binder(rest[0]), _build(rest[1]))
    if head == "fix":
        if len(rest) != 3:
            raise ParseError("fix expects (fix fname param body)")
        return Fix(_as_binder(rest[0]), _as_binder(rest[1]), _build(rest[2]))
    if head == "app":
        if len(rest) < 2:
            raise ParseError("app expects at least a function and one argument")
        result = _build(rest[0])
        for arg in rest[1:]:
            result = App(result, _build(arg))
        return result
    if head == "if":
        if len(rest) != 3:
            raise ParseError("if expects (if cond then else)")
        return If(_build(rest[0]), _build(rest[1]), _build(rest[2]))
    if head == "sample":
        if not rest:
            return Sample(None)
        if not isinstance(rest[0], str):
            raise ParseError("sample expects a distribution name")
        params = [_as_number(p) for p in rest[1:]]
        return Sample(_make_distribution(rest[0], params))
    if head == "score":
        if len(rest) != 1:
            raise ParseError("score expects one argument")
        return Score(_build(rest[0]))
    if head == "observe":
        if len(rest) < 2 or not isinstance(rest[0], str):
            raise ParseError("observe expects (observe dist-name params* value)")
        params = [_as_number(p) for p in rest[1:-1]]
        dist = _make_distribution(rest[0], params)
        return observe(_build(rest[-1]), dist)
    if head == "choice":
        if len(rest) != 3:
            raise ParseError("choice expects (choice p left right)")
        return choice(_as_number(rest[0]), _build(rest[1]), _build(rest[2]))
    if head == "interval":
        if len(rest) != 2:
            raise ParseError("interval expects two numbers")
        return IntervalConst(Interval(_as_number(rest[0]), _as_number(rest[1])))
    op = _OP_ALIASES.get(head, head)
    if op in REGISTRY:
        args = tuple(_build(arg) for arg in rest)
        return Prim(op, args)
    # Fall back to application of a named function.
    result: Term = Var(head)
    for arg in rest:
        result = App(result, _build(arg))
    return result


def parse(source: str) -> Term:
    """Parse a single s-expression into an SPCF term."""
    tokens = list(_tokenize(source))
    if not tokens:
        raise ParseError("empty input")
    node, position = _read(tokens, 0)
    if position != len(tokens):
        raise ParseError("trailing tokens after the first expression")
    return _build(node)
