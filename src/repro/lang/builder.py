"""Convenience constructors (an embedded DSL) for building SPCF programs.

The functions in this module are thin wrappers around the AST constructors of
:mod:`repro.lang.ast` plus the standard syntactic sugar used in the paper:

* ``let x = M in N``          -> :func:`let`
* ``M; N``                    -> :func:`seq`
* ``M ⊕_p N``                 -> :func:`choice`
* ``observe M from D``        -> :func:`observe`
* comparisons ``a <= b`` etc. -> :func:`if_leq`, :func:`if_lt`

Every function accepts either :class:`~repro.lang.ast.Term` instances or
plain Python numbers, which are promoted to constants.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..distributions import (
    Bernoulli,
    Beta,
    Distribution,
    Exponential,
    Gamma,
    Normal,
    Uniform,
)
from ..intervals import Interval
from .ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)

__all__ = [
    "to_term",
    "var",
    "const",
    "interval_const",
    "lam",
    "fix",
    "app",
    "call",
    "let",
    "seq",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "minimum",
    "maximum",
    "absolute",
    "square",
    "sqrt",
    "exp",
    "log",
    "sigmoid",
    "if_leq",
    "if_lt",
    "if_between",
    "sample",
    "uniform",
    "normal",
    "beta",
    "exponential",
    "gamma",
    "score",
    "observe",
    "observe_normal",
    "observe_uniform",
    "choice",
    "flip",
    "let_many",
]

TermLike = "Term | float | int"


def to_term(value: Term | float | int) -> Term:
    """Promote Python numbers to constants."""
    if isinstance(value, Term):
        return value
    return Const(float(value))


def var(name: str) -> Var:
    return Var(name)


def const(value: float) -> Const:
    return Const(float(value))


def interval_const(lo: float, hi: float) -> IntervalConst:
    return IntervalConst(Interval(lo, hi))


def lam(param: str, body: Term | float) -> Lam:
    return Lam(param, to_term(body))


def fix(fname: str, param: str, body: Term | float) -> Fix:
    return Fix(fname, param, to_term(body))


def app(func: Term, arg: Term | float) -> App:
    return App(func, to_term(arg))


def call(func: Term, *args: Term | float) -> Term:
    """Curried application of several arguments."""
    result: Term = func
    for arg in args:
        result = App(result, to_term(arg))
    return result


def let(name: str, value: Term | float, body: Term | float) -> Term:
    """``let name = value in body``."""
    return App(Lam(name, to_term(body)), to_term(value))


def let_many(bindings: Sequence[tuple[str, Term | float]], body: Term | float) -> Term:
    """Nested ``let`` bindings, innermost last."""
    result = to_term(body)
    for name, value in reversed(list(bindings)):
        result = let(name, value, result)
    return result


def seq(first: Term | float, second: Term | float) -> Term:
    """``first; second`` — evaluate ``first`` for effect, return ``second``."""
    return let("_", first, second)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------

def add(left: Term | float, right: Term | float) -> Prim:
    return Prim("add", (to_term(left), to_term(right)))


def sub(left: Term | float, right: Term | float) -> Prim:
    return Prim("sub", (to_term(left), to_term(right)))


def mul(left: Term | float, right: Term | float) -> Prim:
    return Prim("mul", (to_term(left), to_term(right)))


def div(left: Term | float, right: Term | float) -> Prim:
    return Prim("div", (to_term(left), to_term(right)))


def neg(arg: Term | float) -> Prim:
    return Prim("neg", (to_term(arg),))


def minimum(left: Term | float, right: Term | float) -> Prim:
    return Prim("min", (to_term(left), to_term(right)))


def maximum(left: Term | float, right: Term | float) -> Prim:
    return Prim("max", (to_term(left), to_term(right)))


def absolute(arg: Term | float) -> Prim:
    return Prim("abs", (to_term(arg),))


def square(arg: Term | float) -> Prim:
    return Prim("square", (to_term(arg),))


def sqrt(arg: Term | float) -> Prim:
    return Prim("sqrt", (to_term(arg),))


def exp(arg: Term | float) -> Prim:
    return Prim("exp", (to_term(arg),))


def log(arg: Term | float) -> Prim:
    return Prim("log", (to_term(arg),))


def sigmoid(arg: Term | float) -> Prim:
    return Prim("sigmoid", (to_term(arg),))


# ----------------------------------------------------------------------
# Control flow
# ----------------------------------------------------------------------

def if_leq(left: Term | float, right: Term | float, then: Term | float, orelse: Term | float) -> If:
    """``if left <= right then ... else ...`` (SPCF branches on ``cond <= 0``)."""
    return If(sub(left, right), to_term(then), to_term(orelse))


def if_lt(left: Term | float, right: Term | float, then: Term | float, orelse: Term | float) -> If:
    """Strict comparison; measure-theoretically equivalent to :func:`if_leq`."""
    return If(sub(left, right), to_term(then), to_term(orelse))


def if_between(
    value: Term | float,
    low: float,
    high: float,
    then: Term | float,
    orelse: Term | float,
    bind_name: str = "_between",
) -> Term:
    """``if low <= value <= high then ... else ...`` with a single evaluation of ``value``."""
    inner = if_leq(Var(bind_name), high, if_leq(low, Var(bind_name), then, orelse), orelse)
    return let(bind_name, value, inner)


# ----------------------------------------------------------------------
# Probabilistic constructs
# ----------------------------------------------------------------------

def sample(dist: Distribution | None = None) -> Sample:
    """``sample`` (uniform on [0, 1]) or a draw from ``dist``."""
    return Sample(dist)


def uniform(low: float = 0.0, high: float = 1.0) -> Sample:
    return Sample(Uniform(low, high))


def normal(mean: float, std: float) -> Sample:
    return Sample(Normal(mean, std))


def beta(alpha: float, beta_param: float) -> Sample:
    return Sample(Beta(alpha, beta_param))


def exponential(rate: float) -> Sample:
    return Sample(Exponential(rate))


def gamma(shape: float, rate: float = 1.0) -> Sample:
    return Sample(Gamma(shape, rate))


def score(weight: Term | float) -> Score:
    return Score(to_term(weight))


def observe(value: Term | float, dist: Distribution) -> Score:
    """``observe value from dist`` — multiply the weight by the density at ``value``."""
    value_term = to_term(value)
    if isinstance(dist, Normal):
        return observe_normal(dist.mean, dist.std, value_term)
    if isinstance(dist, Uniform):
        return observe_uniform(dist.low, dist.high, value_term)
    if isinstance(dist, Beta):
        return Score(Prim("beta_pdf", (const(dist.alpha), const(dist.beta), value_term)))
    if isinstance(dist, Exponential):
        return Score(Prim("exponential_pdf", (const(dist.rate), value_term)))
    if isinstance(dist, Gamma):
        return Score(Prim("gamma_pdf", (const(dist.shape), const(dist.rate), value_term)))
    if isinstance(dist, Bernoulli):
        return Score(Prim("bernoulli_pmf", (const(dist.p), value_term)))
    raise TypeError(f"observe does not support distribution {dist!r}")


def observe_normal(mean: Term | float, std: Term | float, value: Term | float) -> Score:
    """``observe value from Normal(mean, std)`` with possibly term-valued parameters."""
    return Score(Prim("normal_pdf", (to_term(mean), to_term(std), to_term(value))))


def observe_uniform(low: Term | float, high: Term | float, value: Term | float) -> Score:
    return Score(Prim("uniform_pdf", (to_term(low), to_term(high), to_term(value))))


def choice(probability: float, left: Term | float, right: Term | float) -> Term:
    """Probabilistic choice ``left ⊕_p right``: take ``left`` with probability ``p``.

    Desugared exactly as in the paper: ``if(sample - p, left, right)``.
    """
    return If(sub(Sample(), probability), to_term(left), to_term(right))


def flip(probability: float) -> Term:
    """A Bernoulli draw returning 1.0 with probability ``p`` and 0.0 otherwise."""
    return choice(probability, 1.0, 0.0)
