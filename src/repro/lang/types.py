"""Simple types for SPCF and a unification-based type inference.

SPCF's simple types are ``α, β ::= R | α -> β`` (paper Section 2.2).  The
weight-aware interval type system (Section 5) builds its symbolic skeleton on
top of the simple types of the program, so the constraint generator needs to
know the simple type of every ``λ``/``μ`` parameter.  This module provides a
standard unification-based inference that annotates every node of a term
(addressed by its *path*, the sequence of child indices from the root) with
its simple type.  Unconstrained type variables default to ``R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .ast import App, Const, Fix, If, IntervalConst, Lam, Prim, Sample, Score, Term, Var

__all__ = [
    "SimpleType",
    "RealType",
    "FunType",
    "REAL",
    "TypeError_",
    "TypeAnnotations",
    "infer_types",
    "type_of_program",
]


class SimpleType:
    """Base class for simple types."""


@dataclass(frozen=True)
class RealType(SimpleType):
    """The ground type ``R``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "R"


@dataclass(frozen=True)
class FunType(SimpleType):
    """A function type ``arg -> res``."""

    arg: SimpleType
    res: SimpleType

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.arg!r} -> {self.res!r})"


REAL = RealType()


class TypeError_(Exception):
    """Raised when a term is not simply typable."""


@dataclass(frozen=True)
class _TypeVar(SimpleType):
    """Internal unification variable."""

    identifier: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.identifier}"


class _Unifier:
    """A minimal union-find based unifier over simple types."""

    def __init__(self) -> None:
        self._bindings: Dict[int, SimpleType] = {}
        self._counter = 0

    def fresh(self) -> _TypeVar:
        self._counter += 1
        return _TypeVar(self._counter)

    def resolve(self, type_: SimpleType) -> SimpleType:
        """Follow variable bindings one level (path compression on the way)."""
        while isinstance(type_, _TypeVar) and type_.identifier in self._bindings:
            type_ = self._bindings[type_.identifier]
        return type_

    def fully_resolve(self, type_: SimpleType, default_real: bool = True) -> SimpleType:
        type_ = self.resolve(type_)
        if isinstance(type_, _TypeVar):
            return REAL if default_real else type_
        if isinstance(type_, FunType):
            return FunType(
                self.fully_resolve(type_.arg, default_real),
                self.fully_resolve(type_.res, default_real),
            )
        return type_

    def _occurs(self, variable: _TypeVar, type_: SimpleType) -> bool:
        type_ = self.resolve(type_)
        if isinstance(type_, _TypeVar):
            return type_.identifier == variable.identifier
        if isinstance(type_, FunType):
            return self._occurs(variable, type_.arg) or self._occurs(variable, type_.res)
        return False

    def unify(self, left: SimpleType, right: SimpleType) -> None:
        left, right = self.resolve(left), self.resolve(right)
        if left == right:
            return
        if isinstance(left, _TypeVar):
            if self._occurs(left, right):
                raise TypeError_(f"occurs check failed: {left!r} in {right!r}")
            self._bindings[left.identifier] = right
            return
        if isinstance(right, _TypeVar):
            self.unify(right, left)
            return
        if isinstance(left, FunType) and isinstance(right, FunType):
            self.unify(left.arg, right.arg)
            self.unify(left.res, right.res)
            return
        raise TypeError_(f"cannot unify {left!r} with {right!r}")


@dataclass
class TypeAnnotations:
    """Simple types for every node of a program, addressed by path."""

    root_type: SimpleType
    node_types: Dict[tuple[int, ...], SimpleType]
    param_types: Dict[tuple[int, ...], SimpleType]
    fix_result_types: Dict[tuple[int, ...], SimpleType]

    def type_at(self, path: tuple[int, ...]) -> SimpleType:
        return self.node_types[path]

    def param_type_at(self, path: tuple[int, ...]) -> SimpleType:
        """Parameter type of the ``Lam``/``Fix`` node at ``path``."""
        return self.param_types[path]

    def fix_result_type_at(self, path: tuple[int, ...]) -> SimpleType:
        """Result type of the ``Fix`` node at ``path``."""
        return self.fix_result_types[path]


def infer_types(term: Term, env: Optional[Dict[str, SimpleType]] = None) -> TypeAnnotations:
    """Infer simple types for ``term`` and all of its subterms.

    Raises :class:`TypeError_` when the term is not simply typable (e.g. a
    real literal applied to an argument).
    """
    unifier = _Unifier()
    node_types: Dict[tuple[int, ...], SimpleType] = {}
    param_types: Dict[tuple[int, ...], SimpleType] = {}
    fix_result_types: Dict[tuple[int, ...], SimpleType] = {}

    def visit(node: Term, environment: Dict[str, SimpleType], path: tuple[int, ...]) -> SimpleType:
        result: SimpleType
        if isinstance(node, Var):
            if node.name not in environment:
                raise TypeError_(f"unbound variable {node.name!r}")
            result = environment[node.name]
        elif isinstance(node, (Const, IntervalConst, Sample)):
            result = REAL
        elif isinstance(node, Score):
            unifier.unify(visit(node.arg, environment, path + (0,)), REAL)
            result = REAL
        elif isinstance(node, Prim):
            for index, arg in enumerate(node.args):
                unifier.unify(visit(arg, environment, path + (index,)), REAL)
            result = REAL
        elif isinstance(node, If):
            unifier.unify(visit(node.cond, environment, path + (0,)), REAL)
            then_type = visit(node.then, environment, path + (1,))
            else_type = visit(node.orelse, environment, path + (2,))
            unifier.unify(then_type, else_type)
            result = then_type
        elif isinstance(node, Lam):
            param_type = unifier.fresh()
            param_types[path] = param_type
            body_type = visit(node.body, {**environment, node.param: param_type}, path + (0,))
            result = FunType(param_type, body_type)
        elif isinstance(node, Fix):
            param_type = unifier.fresh()
            result_type = unifier.fresh()
            param_types[path] = param_type
            fix_result_types[path] = result_type
            fun_type = FunType(param_type, result_type)
            body_env = {**environment, node.fname: fun_type, node.param: param_type}
            body_type = visit(node.body, body_env, path + (0,))
            unifier.unify(body_type, result_type)
            result = fun_type
        elif isinstance(node, App):
            fun_type = visit(node.func, environment, path + (0,))
            arg_type = visit(node.arg, environment, path + (1,))
            result_type = unifier.fresh()
            unifier.unify(fun_type, FunType(arg_type, result_type))
            result = result_type
        else:
            raise TypeError_(f"unknown term {node!r}")
        node_types[path] = result
        return result

    root_type = visit(term, dict(env or {}), ())
    resolved_nodes = {path: unifier.fully_resolve(t) for path, t in node_types.items()}
    resolved_params = {path: unifier.fully_resolve(t) for path, t in param_types.items()}
    resolved_fix_results = {path: unifier.fully_resolve(t) for path, t in fix_result_types.items()}
    return TypeAnnotations(
        root_type=unifier.fully_resolve(root_type),
        node_types=resolved_nodes,
        param_types=resolved_params,
        fix_result_types=resolved_fix_results,
    )


def type_of_program(term: Term) -> SimpleType:
    """The simple type of a closed program."""
    return infer_types(term).root_type
