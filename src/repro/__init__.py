"""GuBPI reproduction: guaranteed bounds for posterior inference in universal PPLs.

The package reproduces the system of "Guaranteed Bounds for Posterior
Inference in Universal Probabilistic Programming" (PLDI 2022): an SPCF
modelling language, interval trace semantics, a weight-aware interval type
system, symbolic execution with fixpoint summaries and two path analysers
(polytope-based and box-splitting), plus the stochastic and exact baselines
used by the paper's evaluation.

Typical usage::

    from repro.lang import builder as b
    from repro.analysis import bound_query, AnalysisOptions
    from repro.intervals import Interval

    program = b.let("x", b.sample(), b.seq(b.observe_normal(0.7, 0.1, b.var("x")), b.var("x")))
    bounds = bound_query(program, Interval(0.5, 1.0))
    print(bounds.lower, bounds.upper)
"""

import sys as _sys

# Deeply recursive probabilistic programs (e.g. the pedestrian walk) are
# evaluated with recursive interpreters; CPython's default recursion limit is
# too small for long random walks, so raise it once at import time.
if _sys.getrecursionlimit() < 100_000:
    _sys.setrecursionlimit(100_000)

from . import analysis, distributions, estimation, exact, inference, intervals, lang, models, polytope, semantics, symbolic, typesystem
from .analysis import AnalysisOptions, bound_denotation, bound_posterior_histogram, bound_query
from .intervals import Interval

__all__ = [
    "intervals",
    "distributions",
    "lang",
    "semantics",
    "typesystem",
    "symbolic",
    "polytope",
    "analysis",
    "inference",
    "exact",
    "estimation",
    "models",
    "AnalysisOptions",
    "bound_denotation",
    "bound_query",
    "bound_posterior_histogram",
    "Interval",
]

__version__ = "0.1.0"
