"""GuBPI reproduction: guaranteed bounds for posterior inference in universal PPLs.

The package reproduces the system of "Guaranteed Bounds for Posterior
Inference in Universal Probabilistic Programming" (PLDI 2022): an SPCF
modelling language, interval trace semantics, a weight-aware interval type
system, symbolic execution with fixpoint summaries and pluggable path
analysers (polytope-based and box-splitting ship built in), plus the
stochastic and exact baselines used by the paper's evaluation.

The public API is the :class:`Model` facade: it owns one SPCF term, runs the
expensive symbolic execution once per execution-limits configuration and
serves every query from the cached path set::

    from repro import Model, Interval, AnalysisOptions
    from repro.lang import builder as b

    program = b.let("x", b.sample(), b.seq(b.observe_normal(0.7, 0.1, b.var("x")), b.var("x")))
    model = Model(program, AnalysisOptions(score_splits=64))

    query = model.probability(Interval(0.5, 1.0))   # symbolic execution runs here...
    histogram = model.histogram(0.0, 1.0, 10)       # ...and is reused here
    samples = model.sample(10_000, method="importance")

New path-analysis strategies register through
:func:`repro.analysis.register_analyzer` and are selected by name via
``AnalysisOptions(analyzers=...)``.
"""

import sys as _sys

# Deeply recursive probabilistic programs (e.g. the pedestrian walk) are
# evaluated with recursive interpreters; CPython's default recursion limit is
# too small for long random walks, so raise it once at import time.
if _sys.getrecursionlimit() < 100_000:
    _sys.setrecursionlimit(100_000)

from . import analysis, distributions, estimation, exact, inference, intervals, lang, models, polytope, semantics, symbolic, typesystem
from .analysis import (
    AnalysisOptions,
    AnalysisReport,
    CompiledProgram,
    Model,
    ParallelAnalysisExecutor,
    available_analyzers,
    bound_denotation,
    bound_posterior_histogram,
    bound_query,
    get_analyzer,
    register_analyzer,
)
from .intervals import Interval

__all__ = [
    "intervals",
    "distributions",
    "lang",
    "semantics",
    "typesystem",
    "symbolic",
    "polytope",
    "analysis",
    "inference",
    "exact",
    "estimation",
    "models",
    "Model",
    "CompiledProgram",
    "AnalysisOptions",
    "AnalysisReport",
    "ParallelAnalysisExecutor",
    "register_analyzer",
    "get_analyzer",
    "available_analyzers",
    "bound_denotation",
    "bound_query",
    "bound_posterior_histogram",
    "Interval",
]

__version__ = "0.2.0"
