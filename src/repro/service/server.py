"""The multi-tenant asyncio bounds front end: ``python -m repro.service.server``.

The server wraps :class:`repro.Model` behind a TCP endpoint speaking the
frame protocol of :mod:`repro.service.protocol` with pure-JSON headers (no
pickles cross this boundary).  One request computes guaranteed posterior
bounds for an SPCF program:

.. code-block:: json

    {"type": "bounds",
     "program": "<SPCF source text>",
     "targets": [[0.0, 1.0], [1.0, 2.0]],
     "options": {"max_fixpoint_depth": 4, "stream": true},
     "stream": true}

and the reply is a ``result`` frame carrying the bounds (floats encoded
via ``repr``, so they are **bit-identical** to a local serial run), the
canonical program hash, and whether the compiled program came out of the
shared cache.  With ``"stream": true`` the server additionally emits
``partial`` frames as soon as the engine's first path contributions land —
the anytime bound, surfaced over the wire before exploration finishes.

Multi-tenancy happens in :class:`ProgramCache`: compiled programs (whole
``Model`` instances, with their compile caches and worker pools) are
shared across connections, keyed by the **canonical program hash** — a
structural fingerprint of the parsed term plus the execution limits
(:func:`repro.analysis.model.program_hash`), so textually different
spellings of the same program still share one compiled path set.  The
cache is LRU-bounded; evicted models are closed.  Two tenants submitting
the same program concurrently serialise on a per-program lock — the second
query is served from the model's compile cache instead of re-exploring.
On top of it sits a whole-query **result cache** (program hash + targets +
options → final result frame): a repeated identical query skips the
analyzers entirely and is answered in microseconds, which is what makes
cache-hit latency ≪ cold latency for a long-lived service.

Blocking engine work runs on a thread pool; the asyncio side stays
responsive, and partial-bound callbacks marshal onto the event loop via
``call_soon_threadsafe``.

**Durability** (``--state-dir``): the server keeps a write-ahead journal
(:mod:`repro.service.journal`) plus a content-addressed on-disk store
(:mod:`repro.service.store`) of compiled-program images, whole-query
results and refinement checkpoints.  A restarted server answers repeat
queries from the persistent result store without recompiling, rebuilds
compiled programs from stored path-table images, and **resumes** a
refined (``refine="gap"``) query from its last journaled round — with
floats bit-identical to an uninterrupted run, because rounds are
deterministic and checkpoints round-trip every double exactly.  Clients
re-issuing a query after a crash carry an idempotency ``query_id`` and a
``partials_seen`` count, so only missed partial frames are replayed.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import itertools
import os
import signal
import struct
import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from .. import faults
from ..analysis.config import AnalysisOptions, parse_endpoint
from ..analysis.engine import AnalysisReport
from ..analysis.model import CompiledProgram, Model, program_hash
from ..analysis.refine import RefinementScheduler
from ..lang import ParseError, parse
from ..symbolic.arena import PathTable
from ..symbolic.execute import SymbolicExecutionResult
from .journal import Journal
from .protocol import (
    DeadlineExceeded,
    FrameCorrupted,
    ProtocolError,
    ServerBusy,
    ServiceError,
    bounds_to_wire,
    hash_bytes,
    targets_from_wire,
)
from .store import StateStore

__all__ = ["BoundsServer", "ProgramCache", "serve_in_background", "main"]

_FRAME = struct.Struct("!IQ")
_FRAME_CRC = struct.Struct("!I")
_CRC_FLAG = 0x80000000

#: AnalysisOptions fields clients may set per request.  Derived from the
#: dataclass itself so new engine knobs become available without touching
#: the service tier.
_OPTION_FIELDS = frozenset(field.name for field in dataclasses.fields(AnalysisOptions))


class ProgramCache:
    """A shared, LRU-bounded cache of compiled programs keyed by program hash.

    Entries are whole :class:`repro.Model` instances — each carries its own
    compiled-program cache (per execution limits) and worker pools, so a
    cache hit skips parsing, symbolic execution *and* pool warm-up.  Every
    entry has a :class:`threading.Lock`: concurrent queries for the same
    program serialise (the model's caches are not thread-safe), while
    distinct programs run fully in parallel on the server's thread pool.
    """

    def __init__(self, limit: int = 8) -> None:
        if limit < 1:
            raise ValueError(f"cache limit must be positive, got {limit}")
        self.limit = limit
        self._mutex = threading.Lock()
        self._entries: "OrderedDict[str, tuple[Model, threading.Lock]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(source: str, options: AnalysisOptions):
        """``(term, key)`` for a source text — the lookup key, no side effects.

        Used by the durability layer to consult the persistent result
        store *before* deciding whether a model needs to exist at all (a
        warm-restart repeat query must not count a program-cache miss).
        """
        term = parse(source)
        return term, program_hash(term, options.execution_limits())

    def contains(self, key: str) -> bool:
        """Whether a program is cached, without touching LRU order or counters."""
        with self._mutex:
            return key in self._entries

    def entries(self) -> list[tuple[str, Model]]:
        """A snapshot of ``(key, model)`` pairs (shutdown-time persistence)."""
        with self._mutex:
            return [(key, model) for key, (model, _) in self._entries.items()]

    def lookup(self, source: str, options: AnalysisOptions):
        """``(model, lock, key, hit)`` for a program source text.

        The key is the canonical program hash of the *parsed term* under
        ``options``' execution limits — whitespace, comments and other
        spelling differences never cause a second compile.
        """
        term = parse(source)
        key = program_hash(term, options.execution_limits())
        with self._mutex:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                model, lock = entry
                model.note_program_cache(hit=True)
                return model, lock, key, True
            self.misses += 1
            model = Model(term)
            model.note_program_cache(hit=False)
            lock = threading.Lock()
            self._entries[key] = (model, lock)
            evicted = []
            while len(self._entries) > self.limit:
                _, old = self._entries.popitem(last=False)
                evicted.append(old)
        for old_model, old_lock in evicted:
            with old_lock:  # let an in-flight query on the evictee finish
                old_model.close()
        return model, lock, key, False

    def stats(self) -> dict:
        with self._mutex:
            models = {
                key: model.cache_info() for key, (model, _) in self._entries.items()
            }
            return {
                "entries": len(self._entries),
                "limit": self.limit,
                "hits": self.hits,
                "misses": self.misses,
                "models": models,
            }

    def close(self) -> None:
        with self._mutex:
            entries = list(self._entries.values())
            self._entries.clear()
        for model, lock in entries:
            with lock:
                model.close()


class BoundsServer:
    """The asyncio server: accept loop, per-connection frame dispatch."""

    def __init__(
        self,
        endpoint: str = "127.0.0.1:0",
        cache_limit: int = 8,
        query_threads: int = 4,
        result_cache_limit: int = 256,
        max_inflight_queries: int = 0,
        io_timeout: Optional[float] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        self._host, self._port = parse_endpoint(endpoint)
        self.cache = ProgramCache(limit=cache_limit)
        self._pool = ThreadPoolExecutor(
            max_workers=query_threads, thread_name_prefix="repro-bounds"
        )
        #: Backpressure: at most this many engine queries in flight at once
        #: (0 = unbounded).  Requests past the limit get a typed ``BUSY``
        #: error with a retry-after hint instead of queueing without bound
        #: behind the thread pool.  Result-cache hits are exempt — they cost
        #: microseconds and hold no engine thread.
        self._max_inflight = max(0, int(max_inflight_queries))
        self._active = 0
        self._active_mutex = threading.Lock()
        #: Server-side default for the engine's ``io_timeout`` knob,
        #: injected into requests that do not set it themselves.
        self._io_timeout = io_timeout
        self.queries_rejected = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self.address: Optional[tuple[str, int]] = None
        self.queries_served = 0
        # Whole-query result cache: the engine caches *compiled programs*,
        # but a repeated identical query (same canonical program, targets
        # and options) still re-runs the analyzers — in a long-lived
        # service that repeat is the common case, so the final result
        # frame is memoised too.  Keyed per (program hash, targets,
        # canonical options); the floats are position-independent data, so
        # entries stay valid even after the compiled program is evicted.
        self._results_limit = max(0, int(result_cache_limit))
        self._results: "OrderedDict[tuple, dict]" = OrderedDict()
        self._results_mutex = threading.Lock()
        self.result_hits = 0
        self.result_misses = 0
        # Durability (optional, --state-dir): persistent program/result/
        # checkpoint store plus a write-ahead journal of query progress.
        self.store: Optional[StateStore] = None
        self._journal: Optional[Journal] = None
        self.journal_records_replayed = 0
        self.journal_clean: Optional[bool] = None
        self.result_store_hits = 0
        self.program_store_hits = 0
        self.rounds_resumed = 0
        self.rounds_recomputed = 0
        self.checkpoints_saved = 0
        self.partials_replayed = 0
        self.partials_skipped = 0
        self._durability_mutex = threading.Lock()
        if state_dir is not None:
            self.store = StateStore(state_dir)
            replay = Journal.replay(self.store.journal_path)
            self.journal_records_replayed = len(replay.records)
            self.journal_clean = bool(
                replay.records and replay.records[-1][0].get("type") == "clean"
            )
            self._journal = Journal(self.store.journal_path)
        # In-flight coalescing for idempotent re-issues: result_key -> a
        # future resolved when the original computation finishes, so a
        # client that lost its connection (but not the server) attaches to
        # the running query instead of recomputing it.
        self._inflight: dict[tuple, asyncio.Future] = {}

    @property
    def endpoint(self) -> str:
        if self.address is None:
            raise RuntimeError("server is not started")
        host, port = self.address
        return f"{host}:{port}"

    # ------------------------------------------------------------------
    # asyncio lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self.address = self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)
        self.cache.close()
        if self._journal is not None and not self._journal.closed:
            self._journal.close()

    async def graceful_shutdown(self, grace: float = 30.0) -> None:
        """SIGTERM semantics: drain in-flight queries, snapshot, mark clean.

        Stops accepting connections, waits up to ``grace`` seconds for
        running engine queries to finish, persists every compiled program
        the state store does not hold yet, appends a clean-shutdown marker
        to the journal and shuts the caches down.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + max(0.0, grace)
        while time.monotonic() < deadline:
            with self._active_mutex:
                active = self._active
            if active == 0:
                break
            await asyncio.sleep(0.05)
        if self.store is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._snapshot_programs)
        if self._journal is not None and not self._journal.closed:
            self._journal.close(clean=True)
        self._pool.shutdown(wait=True)
        self.cache.close()

    def _snapshot_programs(self) -> None:
        """Persist every cached compilation the store is missing (shutdown)."""
        if self.store is None:
            return
        for _key, model in self.cache.entries():
            for compiled in list(model._compiled.values()):
                self._persist_program(compiled)

    # ------------------------------------------------------------------
    # Durable program images
    # ------------------------------------------------------------------
    def _persist_program(self, compiled: CompiledProgram) -> None:
        """Write a compiled program's path-table image to the state store.

        Content-addressed by the canonical program hash, so re-persisting
        is a no-op and textually different spellings share one image.
        """
        if self.store is None:
            return
        key = program_hash(compiled.term, compiled.limits)
        if self.store.has_program(key):
            return
        execution = compiled.execution
        self.store.save_program(
            key,
            execution.table().to_bytes(),
            {
                "truncated_paths": execution.truncated_paths,
                "pruned_paths": execution.pruned_paths,
                "compile_seconds": compiled.compile_seconds,
            },
        )

    def _install_stored_program(
        self, model: Model, options: AnalysisOptions
    ) -> Optional[CompiledProgram]:
        """Warm-restart path: rebuild a compiled program from its stored image.

        Returns the installed :class:`CompiledProgram`, or ``None`` when the
        store has no (usable) image — the caller compiles from scratch.  A
        corrupt entry was already CRC-detected and dropped by the store.
        """
        if self.store is None:
            return None
        limits = options.execution_limits()
        key = program_hash(model._term, limits)
        loaded = self.store.load_program(key)
        if loaded is None:
            return None
        meta, image = loaded
        table = PathTable.from_buffer(image)
        execution = SymbolicExecutionResult(
            paths=tuple(table.decode_all()),
            truncated_paths=int(meta.get("truncated_paths", 0)),
            pruned_paths=int(meta.get("pruned_paths", 0)),
        )
        # The decoded table IS the columnar view — cache it on the result so
        # analyzers and the arena transport reuse it instead of re-interning.
        object.__setattr__(execution, "_table", table)
        compiled = CompiledProgram(
            term=model._term,
            limits=limits,
            execution=execution,
            compile_seconds=float(meta.get("compile_seconds", 0.0)),
        )
        try:
            model.install_compiled(compiled)
        except ValueError:  # image from a different program: ignore it
            return None
        with self._durability_mutex:
            self.program_store_hits += 1
        return compiled

    # ------------------------------------------------------------------
    # Frame IO (asyncio streams)
    # ------------------------------------------------------------------
    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> tuple[dict, bytes]:
        import json

        prefix = await reader.readexactly(_FRAME.size)
        header_len, blob_len = _FRAME.unpack(prefix)
        expected_crc = None
        if header_len & _CRC_FLAG:
            header_len &= ~_CRC_FLAG
            (expected_crc,) = _FRAME_CRC.unpack(
                await reader.readexactly(_FRAME_CRC.size)
            )
        if header_len > 16 * 1024 * 1024 or blob_len > 64 * 1024 * 1024:
            raise ProtocolError("frame sizes out of range")
        payload = await reader.readexactly(header_len)
        blob = await reader.readexactly(blob_len) if blob_len else b""
        if expected_crc is not None:
            crc = zlib.crc32(payload)
            if blob:
                crc = zlib.crc32(blob, crc)
            if (crc & 0xFFFFFFFF) != expected_crc:
                raise FrameCorrupted(
                    f"frame CRC mismatch (header {header_len}B, blob {blob_len}B)"
                )
        header = json.loads(payload.decode())
        if not isinstance(header, dict):
            raise ProtocolError("frame header must be a JSON object")
        return header, blob

    @staticmethod
    async def _write_frame(
        writer: asyncio.StreamWriter, header: dict, blob: bytes = b""
    ) -> None:
        import json

        payload = json.dumps(header, separators=(",", ":"), ensure_ascii=False).encode()
        crc = zlib.crc32(payload)
        if blob:
            crc = zlib.crc32(blob, crc)
        writer.write(
            _FRAME.pack(len(payload) | _CRC_FLAG, len(blob))
            + _FRAME_CRC.pack(crc & 0xFFFFFFFF)
            + payload
            + blob
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header, _blob = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client hung up
                except ProtocolError as error:
                    # A corrupted or malformed request frame loses the frame
                    # boundary: reply with a typed error, then drop the
                    # connection (FrameCorrupted carries code=FAULT).
                    frame = {
                        "type": "error",
                        "exc_type": type(error).__name__,
                        "error": str(error),
                    }
                    code = getattr(error, "code", None)
                    if code:
                        frame["code"] = code
                    try:
                        await self._write_frame(writer, frame)
                    except (ConnectionError, OSError):  # pragma: no cover
                        pass
                    return
                kind = header.get("type")
                try:
                    if kind == "bounds":
                        await self._handle_bounds(writer, header)
                    elif kind == "stats":
                        await self._write_frame(writer, self._stats_frame())
                    elif kind == "ping":
                        await self._write_frame(writer, {"type": "pong"})
                    else:
                        raise ProtocolError(f"unknown request type {kind!r}")
                except (
                    ProtocolError, ParseError, ServiceError, faults.FaultInjected,
                    ValueError, KeyError, TypeError,
                ) as error:
                    frame = {
                        "type": "error",
                        "exc_type": type(error).__name__,
                        "error": str(error),
                    }
                    code = getattr(error, "code", None)
                    if code is None and isinstance(error, faults.FaultInjected):
                        code = "FAULT"
                    if code:
                        frame["code"] = code
                    if isinstance(error, ServerBusy):
                        frame["retry_after"] = error.retry_after
                    await self._write_frame(writer, frame)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------
    @staticmethod
    def _result_key(program_key: str, header: dict) -> tuple:
        import json

        return (
            program_key,
            json.dumps(header.get("targets"), sort_keys=True),
            json.dumps(header.get("options") or {}, sort_keys=True),
            # A deadline caps the refinement budget, which can change the
            # exact refined floats — deadline-capped and uncapped runs must
            # not share a cache entry.
            header.get("deadline"),
        )

    @staticmethod
    def _result_disk_key(result_key: tuple) -> str:
        """Content address of a whole-query result (state-store file name)."""
        import json

        return hash_bytes(json.dumps(list(result_key)).encode())

    def _result_lookup(self, result_key: tuple) -> Optional[dict]:
        if not self._results_limit and self.store is None:
            return None
        with self._results_mutex:
            cached = self._results.get(result_key)
            if cached is not None:
                self._results.move_to_end(result_key)
                self.result_hits += 1
                return dict(cached)
            self.result_misses += 1
        if self.store is not None:
            # Disk tier: survives restarts.  A hit refills the memory tier
            # (without re-writing the disk entry it just came from).
            stored = self.store.load_result(self._result_disk_key(result_key))
            if stored is not None:
                with self._durability_mutex:
                    self.result_store_hits += 1
                self._result_store(result_key, stored, persist=False)
                return dict(stored)
        return None

    def _result_store(
        self, result_key: tuple, result: dict, persist: bool = True
    ) -> None:
        if self._results_limit:
            with self._results_mutex:
                self._results[result_key] = result
                self._results.move_to_end(result_key)
                while len(self._results) > self._results_limit:
                    self._results.popitem(last=False)
        if persist and self.store is not None:
            self.store.save_result(self._result_disk_key(result_key), result)

    def _result_stats(self) -> dict:
        with self._results_mutex:
            return {
                "entries": len(self._results),
                "limit": self._results_limit,
                "hits": self.result_hits,
                "misses": self.result_misses,
            }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _executor_stats(self) -> dict:
        """Degradation/reaping telemetry aggregated over the cached models."""
        workers_reaped = 0
        degraded_chunks = 0
        degraded_to: list[str] = []
        for _key, model in self.cache.entries():
            for executor in model._executors.values():
                degraded_chunks += getattr(executor, "degraded_chunks", 0)
                to = getattr(executor, "degraded_to", None)
                if to and to not in degraded_to:
                    degraded_to.append(to)
                queue = getattr(executor, "_queue", None)
                if queue is not None:
                    workers_reaped += getattr(queue, "workers_reaped", 0)
        return {
            "workers_reaped": workers_reaped,
            "degraded_chunks": degraded_chunks,
            "degraded_to": degraded_to,
        }

    def _durability_stats(self) -> dict:
        with self._durability_mutex:
            stats = {
                "enabled": self.store is not None,
                "journal_records_replayed": self.journal_records_replayed,
                "journal_clean": self.journal_clean,
                "result_store_hits": self.result_store_hits,
                "program_store_hits": self.program_store_hits,
                "rounds_resumed": self.rounds_resumed,
                "rounds_recomputed": self.rounds_recomputed,
                "checkpoints_saved": self.checkpoints_saved,
                "partials_replayed": self.partials_replayed,
                "partials_skipped": self.partials_skipped,
            }
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats

    def _stats_frame(self) -> dict:
        return {
            "type": "stats",
            "cache": self.cache.stats(),
            "results": self._result_stats(),
            "queries": self.queries_served,
            "inflight": self._active,
            "rejected": self.queries_rejected,
            "executors": self._executor_stats(),
            "durability": self._durability_stats(),
        }

    def _acquire_slot(self) -> None:
        """Claim one in-flight engine slot or raise a typed ``BUSY`` error."""
        with self._active_mutex:
            if self._max_inflight and self._active >= self._max_inflight:
                self.queries_rejected += 1
                raise ServerBusy(
                    f"server is at its in-flight query limit "
                    f"({self._max_inflight}); retry shortly",
                    retry_after=0.25,
                )
            self._active += 1

    @staticmethod
    def _consult_query_faults() -> None:
        """The ``server.query`` fault site, shared by both query flows."""
        action = faults.decide("server.query")
        if action is not None:
            if action.kind == "fail":
                raise faults.FaultInjected("injected query failure")
            if action.kind == "delay":
                # Holds this engine thread (and its backpressure slot)
                # for a deterministic while — the chaos suite's lever
                # for provoking a BUSY reply without timing races.
                plan = faults.active()
                time.sleep(
                    action.param if action.param is not None
                    else (plan.default_param() if plan else 0.0)
                )

    def _request_options(self, header: dict) -> AnalysisOptions:
        raw = header.get("options") or {}
        if not isinstance(raw, dict):
            raise ProtocolError("options must be a JSON object")
        unknown = set(raw) - _OPTION_FIELDS
        if unknown:
            raise ProtocolError(f"unknown analysis options: {sorted(unknown)}")
        # JSON has no tuples; analyzers arrive as a list.
        if isinstance(raw.get("analyzers"), list):
            raw = dict(raw, analyzers=tuple(raw["analyzers"]))
        if self._io_timeout is not None and "io_timeout" not in raw:
            raw = dict(raw, io_timeout=self._io_timeout)
        return AnalysisOptions(**raw)

    async def _handle_bounds(self, writer: asyncio.StreamWriter, header: dict) -> None:
        source = header.get("program")
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError("bounds request needs a non-empty 'program' string")
        targets = targets_from_wire(header.get("targets") or ())
        if not targets:
            raise ProtocolError("bounds request needs at least one target interval")
        options = self._request_options(header)
        want_stream = bool(header.get("stream"))
        if want_stream and not options.stream:
            options = options.with_updates(stream=True)

        # Deadline propagation: a client-supplied relative deadline (seconds)
        # caps the engine's whole-query time budget, the socket tier's
        # per-job timeout and the refinement budget — one number, threaded
        # all the way down, so no query outlives its caller.
        deadline_s = header.get("deadline")
        deadline_at: Optional[float] = None
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise DeadlineExceeded("deadline must be a positive number of seconds")
            deadline_at = time.monotonic() + deadline_s
            updates: dict = {
                "time_budget": (
                    deadline_s if options.time_budget is None
                    else min(options.time_budget, deadline_s)
                ),
            }
            if options.job_timeout is None or options.job_timeout > deadline_s:
                updates["job_timeout"] = deadline_s
            if options.refine_enabled:
                updates["refine_time_budget"] = (
                    deadline_s if options.refine_time_budget is None
                    else min(options.refine_time_budget, deadline_s)
                )
            options = options.with_updates(**updates)

        if self.store is not None:
            # Durable flow: consult the persistent result store *before*
            # touching the program cache, coalesce idempotent re-issues and
            # checkpoint refinement rounds.
            await self._handle_bounds_durable(
                writer, header, source, targets, options,
                want_stream, deadline_at, deadline_s,
            )
            return

        loop = asyncio.get_running_loop()
        partials: asyncio.Queue = asyncio.Queue()

        def on_progress(partial_bounds, paths_done: int) -> None:
            loop.call_soon_threadsafe(
                partials.put_nowait, (bounds_to_wire(partial_bounds), paths_done)
            )

        model, lock, key, cache_hit = self.cache.lookup(source, options)

        result_key = self._result_key(key, header)
        cached = self._result_lookup(result_key)
        if cached is not None:
            # Served straight from the result cache: same exact floats,
            # no analyzer run, no partial frames (there is nothing to
            # anticipate).  ``seconds`` reports *this* serve, not the
            # original compute.
            self.queries_served += 1
            await self._write_frame(
                writer,
                dict(
                    cached,
                    cache="hit" if cache_hit else "miss",
                    result_cache="hit",
                    seconds=0.0,
                    first_result_seconds=None,
                ),
            )
            return

        # Backpressure: reject rather than queue without bound.  The slot is
        # held until the engine thread finishes — even when a deadline makes
        # us abandon the reply early, the thread is still busy.
        self._acquire_slot()

        def run_query():
            self._consult_query_faults()
            report = AnalysisReport()
            with lock:
                bounds = model.bounds(
                    targets,
                    options=options,
                    report=report,
                    progress=on_progress if want_stream else None,
                )
            return bounds, report

        query = loop.run_in_executor(self._pool, run_query)

        def release_slot(finished: asyncio.Future) -> None:
            with self._active_mutex:
                self._active -= 1
            if not finished.cancelled():
                finished.exception()  # mark retrieved (abandoned queries)

        query.add_done_callback(release_slot)
        waiter = asyncio.ensure_future(partials.get())
        try:
            while True:
                wait_timeout = None
                if deadline_at is not None:
                    wait_timeout = max(0.0, deadline_at - time.monotonic())
                done, _pending = await asyncio.wait(
                    {query, waiter},
                    timeout=wait_timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # Deadline expired with the engine still working: reply
                    # now with a typed error and abandon the thread — the
                    # propagated time budget makes its remaining socket jobs
                    # fail fast rather than burn workers.
                    raise DeadlineExceeded(
                        f"query exceeded its {deadline_s}s deadline"
                    )
                if waiter in done:
                    partial_bounds, paths_done = waiter.result()
                    await self._write_frame(
                        writer,
                        {"type": "partial", "bounds": partial_bounds,
                         "paths_done": paths_done},
                    )
                    waiter = asyncio.ensure_future(partials.get())
                if query in done:
                    break
        finally:
            waiter.cancel()
        bounds, report = await query  # re-raises engine errors
        # A partial that raced the final result is still worth delivering
        # (clients treat partials as strictly-before-result).
        while not partials.empty():
            partial_bounds, paths_done = partials.get_nowait()
            await self._write_frame(
                writer,
                {"type": "partial", "bounds": partial_bounds, "paths_done": paths_done},
            )
        self.queries_served += 1
        result = {
            "type": "result",
            "bounds": bounds_to_wire(bounds),
            "program_hash": key,
            "cache": "hit" if cache_hit else "miss",
            "paths": report.path_count,
            "seconds": report.seconds,
            "first_result_seconds": report.first_result_seconds,
            "refine_rounds": report.refine_rounds,
            "result_cache": "miss",
        }
        self._result_store(result_key, result)
        await self._write_frame(writer, result)

    # ------------------------------------------------------------------
    # Durable request handling (--state-dir)
    # ------------------------------------------------------------------
    async def _write_partial(
        self, writer: asyncio.StreamWriter, item: tuple, partials_seen: int
    ) -> None:
        """Emit one seq-numbered partial frame, skipping already-seen seqs.

        A resuming client reports how many partials it already holds
        (``partials_seen``); partials at or below that sequence number are
        suppressed so reconnection replays only what was actually missed.
        """
        partial_bounds, paths_done, seq = item
        if seq <= partials_seen:
            with self._durability_mutex:
                self.partials_skipped += 1
            return
        await self._write_frame(
            writer,
            {"type": "partial", "bounds": partial_bounds,
             "paths_done": paths_done, "seq": seq},
        )

    async def _handle_bounds_durable(
        self,
        writer: asyncio.StreamWriter,
        header: dict,
        source: str,
        targets,
        options: AnalysisOptions,
        want_stream: bool,
        deadline_at: Optional[float],
        deadline_s: Optional[float],
    ) -> None:
        """One bounds query against the durable tier.

        Order of tiers: memory result cache → persistent result store →
        coalesce with an identical in-flight query → compute (with the
        program warm-loaded from its stored image when possible, and
        ``refine="gap"`` rounds checkpointed so a crashed query resumes
        from its last journaled round).
        """
        assert self.store is not None
        loop = asyncio.get_running_loop()
        _term, key = ProgramCache.key_for(source, options)
        result_key = self._result_key(key, header)
        partials_seen = int(header.get("partials_seen") or 0)

        async def serve_cached(cached: dict) -> None:
            self.queries_served += 1
            await self._write_frame(
                writer,
                dict(
                    cached,
                    cache="hit" if self.cache.contains(key) else "miss",
                    result_cache="hit",
                    seconds=0.0,
                    first_result_seconds=None,
                ),
            )

        cached = self._result_lookup(result_key)
        if cached is not None:
            await serve_cached(cached)
            return

        # Idempotent re-issue: a client that lost its connection (but not
        # the server) re-sends the same query — attach to the running
        # computation instead of recomputing, then serve its stored result.
        existing = self._inflight.get(result_key)
        if existing is not None:
            await asyncio.shield(existing)
            cached = self._result_lookup(result_key)
            if cached is not None:
                await serve_cached(cached)
                return

        self._acquire_slot()
        inflight: asyncio.Future = loop.create_future()
        self._inflight[result_key] = inflight
        partials: asyncio.Queue = asyncio.Queue()
        disk_key = self._result_disk_key(result_key)

        def emit(wire_bounds: list, paths_done: int, seq: int) -> None:
            loop.call_soon_threadsafe(
                partials.put_nowait, (wire_bounds, paths_done, seq)
            )

        model, lock, _key2, cache_hit = self.cache.lookup(source, options)

        def run_query():
            self._consult_query_faults()
            report = AnalysisReport()
            with lock:
                if options.refine_enabled:
                    bounds = self._run_refined_durable(
                        model, targets, options, report,
                        emit if want_stream else None, disk_key, partials_seen,
                    )
                else:
                    if model.compiled_for(options) is None:
                        self._install_stored_program(model, options)
                    seq_counter = itertools.count(1)
                    bounds = model.bounds(
                        targets,
                        options=options,
                        report=report,
                        progress=(
                            (lambda b, n: emit(bounds_to_wire(b), n, next(seq_counter)))
                            if want_stream else None
                        ),
                    )
                    compiled = model.compiled_for(options)
                    if compiled is not None:
                        self._persist_program(compiled)
            return bounds, report

        query = loop.run_in_executor(self._pool, run_query)

        def release_slot(finished: asyncio.Future) -> None:
            with self._active_mutex:
                self._active -= 1
            if not finished.cancelled():
                finished.exception()  # mark retrieved (abandoned queries)

        query.add_done_callback(release_slot)
        try:
            waiter = asyncio.ensure_future(partials.get())
            try:
                while True:
                    wait_timeout = None
                    if deadline_at is not None:
                        wait_timeout = max(0.0, deadline_at - time.monotonic())
                    done, _pending = await asyncio.wait(
                        {query, waiter},
                        timeout=wait_timeout,
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if not done:
                        raise DeadlineExceeded(
                            f"query exceeded its {deadline_s}s deadline"
                        )
                    if waiter in done:
                        await self._write_partial(writer, waiter.result(), partials_seen)
                        waiter = asyncio.ensure_future(partials.get())
                    if query in done:
                        break
            finally:
                waiter.cancel()
            bounds, report = await query  # re-raises engine errors
            while not partials.empty():
                await self._write_partial(writer, partials.get_nowait(), partials_seen)
            self.queries_served += 1
            result = {
                "type": "result",
                "bounds": bounds_to_wire(bounds),
                "program_hash": key,
                "cache": "hit" if cache_hit else "miss",
                "paths": report.path_count,
                "seconds": report.seconds,
                "first_result_seconds": report.first_result_seconds,
                "refine_rounds": report.refine_rounds,
                "result_cache": "miss",
            }
            # Persist + journal *before* the reply: a crash between the two
            # (the ``server.ack`` site) leaves a completed result the
            # restarted server serves straight from the store.
            self._result_store(result_key, result)
            if self._journal is not None:
                self._journal.append({"type": "done", "query": disk_key}, sync=True)
            action = faults.decide("server.ack")
            if action is not None and action.kind == "die":
                os._exit(1)
            await self._write_frame(writer, result)
        finally:
            self._inflight.pop(result_key, None)
            if not inflight.done():
                inflight.set_result(True)

    def _run_refined_durable(
        self,
        model: Model,
        targets,
        options: AnalysisOptions,
        report: AnalysisReport,
        emit,
        disk_key: str,
        partials_seen: int,
    ):
        """One checkpointed ``refine="gap"`` query (pool thread, model lock held).

        Drives the :class:`RefinementScheduler` directly: after every
        completed round the scheduler state is checkpointed to the store and
        the round journaled (synced) *before* the partial reaches the
        client, so a crashed server resumes from its last completed round —
        bit-identically, because rounds are deterministic and checkpoints
        round-trip every float exactly.  Per-round partials carry the round
        number as their sequence, stable across restarts.
        """
        compiled = model.compiled_for(options)
        if compiled is None:
            compiled = self._install_stored_program(model, options)
        if compiled is None:
            compiled = model.compile(options)
            report.seconds += compiled.compile_seconds
            self._persist_program(compiled)
        else:
            report.compile_cache_hits += 1
        executor = model.executor_for(options)
        execution = compiled.execution

        scheduler: Optional[RefinementScheduler] = None
        resumed = 0
        blob = self.store.load_checkpoint(disk_key)
        if blob is not None:
            try:
                scheduler = RefinementScheduler.from_bytes(
                    blob, execution, targets, options, executor=executor
                )
                resumed = scheduler.rounds_run
            except ValueError:  # stale/foreign checkpoint: reseed
                scheduler = None
        if scheduler is None:
            scheduler = RefinementScheduler(
                execution, targets, options, executor=executor
            )
        if resumed:
            with self._durability_mutex:
                self.rounds_resumed += resumed
            if self._journal is not None:
                self._journal.append(
                    {"type": "resume", "query": disk_key, "rounds": resumed},
                    sync=True,
                )
            if emit is not None and partials_seen < resumed:
                # Catch the client up with ONE partial summarising every
                # checkpointed round it has not seen.
                emit(
                    bounds_to_wire(scheduler.bounds),
                    len(scheduler.contributions),
                    resumed,
                )
                with self._durability_mutex:
                    self.partials_replayed += 1

        def on_round(_bounds) -> None:
            self.store.save_checkpoint(disk_key, scheduler.to_bytes())
            with self._durability_mutex:
                self.checkpoints_saved += 1
            if self._journal is not None:
                self._journal.append(
                    {"type": "round", "query": disk_key,
                     "round": scheduler.rounds_run},
                    sync=True,
                )
            action = faults.decide("server.crash")
            if action is not None and action.kind == "die":
                os._exit(1)

        progress = None
        if emit is not None:
            def progress(bounds, paths_done):
                emit(bounds_to_wire(bounds), paths_done, scheduler.rounds_run)

        bounds = scheduler.run(progress=progress, report=report, round_hook=on_round)
        with self._durability_mutex:
            self.rounds_recomputed += scheduler.rounds_run - resumed
        for contribution in scheduler.contributions:
            report.record_path(contribution.analyzer_name)
        self.store.drop_checkpoint(disk_key)
        return bounds


class _BackgroundServer:
    """A bounds server running on a dedicated event-loop thread."""

    def __init__(self, server: BoundsServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def endpoint(self) -> str:
        return self.server.endpoint

    def stop(self) -> None:
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(10)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        self._loop.close()

    def stop_gracefully(self, grace: float = 10.0) -> None:
        """Drain, snapshot and mark the journal clean (SIGTERM semantics)."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.graceful_shutdown(grace), self._loop
            ).result(grace + 10)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "_BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_background(
    endpoint: str = "127.0.0.1:0",
    cache_limit: int = 8,
    query_threads: int = 4,
    result_cache_limit: int = 256,
    max_inflight_queries: int = 0,
    io_timeout: Optional[float] = None,
    state_dir: Optional[str] = None,
) -> _BackgroundServer:
    """Start a :class:`BoundsServer` on a daemon thread and return a handle.

    The embedding entry point (tests, notebooks, the demo script): the
    caller gets ``handle.endpoint`` to hand to :class:`ServiceClient` and
    ``handle.stop()`` for teardown.
    """
    server = BoundsServer(
        endpoint,
        cache_limit=cache_limit,
        query_threads=query_threads,
        result_cache_limit=result_cache_limit,
        max_inflight_queries=max_inflight_queries,
        io_timeout=io_timeout,
        state_dir=state_dir,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            try:
                await server.start()
            except BaseException as error:  # pragma: no cover - bind failures
                failure.append(error)
            finally:
                started.set()

        loop.run_until_complete(boot())
        if not failure:
            loop.run_forever()

    thread = threading.Thread(target=run, name="repro-bounds-server", daemon=True)
    thread.start()
    started.wait(timeout=10)
    if failure:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        raise failure[0]
    return _BackgroundServer(server, loop, thread)


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.server",
        description="Guaranteed-posterior-bounds service over TCP.",
    )
    parser.add_argument("--bind", default="127.0.0.1:7753", metavar="HOST:PORT")
    parser.add_argument("--cache-limit", type=int, default=8,
                        help="how many compiled programs to keep cached")
    parser.add_argument("--query-threads", type=int, default=4,
                        help="concurrent blocking engine queries")
    parser.add_argument("--result-cache-limit", type=int, default=256,
                        help="memoised whole-query results (0 disables)")
    parser.add_argument("--max-inflight", type=int, default=0,
                        help="reject (BUSY) past this many in-flight queries (0 = unbounded)")
    parser.add_argument("--io-timeout", type=float, default=None,
                        help="default engine io_timeout in seconds (socket liveness window)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="durable state directory (WAL + program/result/"
                             "checkpoint store); restarts resume from it")
    parser.add_argument("--grace", type=float, default=30.0,
                        help="graceful-shutdown drain window in seconds "
                             "(SIGTERM/SIGINT)")
    args = parser.parse_args(argv)
    server = BoundsServer(
        args.bind,
        cache_limit=args.cache_limit,
        query_threads=args.query_threads,
        result_cache_limit=args.result_cache_limit,
        max_inflight_queries=args.max_inflight,
        io_timeout=args.io_timeout,
        state_dir=args.state_dir,
    )

    async def run() -> None:
        await server.start()
        print(f"bounds service listening on {server.endpoint}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass  # non-POSIX platforms fall back to KeyboardInterrupt
        serving = asyncio.ensure_future(server.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        done, _pending = await asyncio.wait(
            {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
        )
        if stopping in done:
            # SIGTERM/SIGINT: drain in-flight queries, snapshot unpersisted
            # programs, mark the journal clean — the crash/kill path simply
            # never reaches this and recovers from the WAL instead.
            serving.cancel()
            try:
                await serving
            except asyncio.CancelledError:
                pass
            await server.graceful_shutdown(grace=args.grace)
        else:
            stopping.cancel()
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    main()
