"""Crash-safe write-ahead journal for the service tier.

The work queue (:mod:`repro.service.queue`) and the bounds server
(:mod:`repro.service.server`) both need to survive ``kill -9``: queued
jobs must be requeued on restart, completed refinement rounds must not be
recomputed, and resource manifests must be re-registered.  This module is
the shared durability primitive — an append-only journal of
length-prefixed, CRC32-checksummed records with torn-tail-tolerant
replay.

On-disk layout::

    +----------+------------------------------------------------+
    | magic 8B |  record | record | record | ...                 |
    +----------+------------------------------------------------+

and each record::

    +----------------+--------------+-----------+---------------+------+
    | header_len u32 | blob_len u64 | crc32 u32 | header (JSON) | blob |
    +----------------+--------------+-----------+---------------+------+
          network byte order (``!IQI``)            UTF-8         opaque

``crc32`` covers ``header + blob``.  The **header** is a small JSON
object (record type, job ids, round numbers); the **blob** carries bulk
payloads such as resource images.  Floats in headers round-trip exactly
(``json`` serialises via ``repr``), so journaled bounds are bit-identical
on replay.

Durability discipline: appends are written immediately but fsynced in
batches (every :attr:`Journal.fsync_batch` records) unless the caller
passes ``sync=True`` for a critical record (round-completed, result,
clean-shutdown).  A crash can therefore lose the *tail* of the journal —
never the middle — and :meth:`Journal.replay` stops cleanly at the first
record whose prefix overruns the file, whose CRC mismatches, or whose
header fails to parse.  Everything before the damage is recovered;
everything after is reported as dropped bytes, and the recovering process
truncates the tail by rewriting from the accepted prefix.

Fault sites (see :mod:`repro.faults`):

``journal.write``
    Consulted once per :meth:`Journal.append`.  The ``torn`` action
    writes only a prefix of the record and wedges the journal (further
    appends are dropped), simulating the bytes a crash mid-write leaves
    behind; ``fail`` raises :class:`~repro.faults.FaultInjected`.
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from .. import faults

__all__ = [
    "Journal",
    "JournalReplay",
    "register_temp",
    "unregister_temp",
]

#: Record prefix: header length (u32) + blob length (u64) + CRC32 (u32).
_RECORD = struct.Struct("!IQI")

#: File magic: identifies a journal and pins its format version.
MAGIC = b"REPROWAL1"

#: Sanity caps mirroring the wire protocol — a corrupt length field fails
#: fast instead of making replay allocate gigabytes.
_MAX_HEADER_BYTES = 16 * 1024 * 1024
_MAX_BLOB_BYTES = 4 * 1024 * 1024 * 1024


# ---------------------------------------------------------------------------
# Crash-leftover cleanup (mirrors transport._LIVE_SEGMENTS for /dev/shm)
# ---------------------------------------------------------------------------
#
# Atomic writes in the durability layer go through a ``*.tmp`` sibling that
# is renamed over the target.  A process that dies between write and rename
# would leave the temp file behind, so every live temp path is registered
# here and swept at interpreter exit — crashed *test runs* (which exit the
# interpreter normally after the in-process "crash") leave no strays.

_LIVE_TEMPS: set[str] = set()
_TEMPS_LOCK = threading.Lock()


def register_temp(path: Union[str, Path]) -> None:
    """Track a temp file for unlink-at-exit until :func:`unregister_temp`."""
    with _TEMPS_LOCK:
        _LIVE_TEMPS.add(str(path))


def unregister_temp(path: Union[str, Path]) -> None:
    """Stop tracking a temp file (it was renamed into place or removed)."""
    with _TEMPS_LOCK:
        _LIVE_TEMPS.discard(str(path))


def _sweep_temps() -> None:
    with _TEMPS_LOCK:
        leftovers = list(_LIVE_TEMPS)
        _LIVE_TEMPS.clear()
    for path in leftovers:
        try:
            os.unlink(path)
        except OSError:
            pass


atexit.register(_sweep_temps)


@dataclass
class JournalReplay:
    """What :meth:`Journal.replay` recovered from a journal file.

    ``records`` is the accepted prefix — every ``(header, blob)`` pair up
    to (not including) the first torn or corrupt record.  ``torn`` is true
    when the file ended mid-record or failed a CRC check; ``dropped_bytes``
    counts the bytes past the accepted prefix.
    """

    records: list[tuple[dict, bytes]] = field(default_factory=list)
    torn: bool = False
    dropped_bytes: int = 0
    #: Byte offset of the end of the accepted prefix (for tail truncation).
    valid_size: int = 0

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class Journal:
    """An append-only CRC-checksummed record log (see the module docstring).

    Thread-safe: appends from the queue's accept threads and the server's
    engine threads interleave record-atomically.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync_batch: int = 32,
        truncate_torn_tail: bool = True,
    ) -> None:
        self.path = Path(path)
        self.fsync_batch = max(1, int(fsync_batch))
        self._lock = threading.Lock()
        self._pending_sync = 0
        self._wedged = False  # a ``torn`` fault fired; drop further appends
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing and truncate_torn_tail:
            replay = self.replay(self.path)
            if replay.torn:
                self._truncate_to(replay.valid_size)
        self._file = open(self.path, "ab")
        if not existing:
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())

    # -- writing ----------------------------------------------------------

    def append(self, record: dict, blob: bytes = b"", sync: bool = False) -> None:
        """Append one record; fsync if ``sync`` or the batch is due."""
        payload = json.dumps(record, separators=(",", ":"), ensure_ascii=False).encode()
        if len(payload) > _MAX_HEADER_BYTES or len(blob) > _MAX_BLOB_BYTES:
            raise ValueError("journal record exceeds format limits")
        crc = zlib.crc32(payload + blob) & 0xFFFFFFFF
        data = _RECORD.pack(len(payload), len(blob), crc) + payload + blob
        action = faults.decide("journal.write")
        with self._lock:
            if self._wedged or self._file.closed:
                return
            if action is not None:
                if action.kind == "fail":
                    raise faults.FaultInjected("journal.write: injected write failure")
                if action.kind == "torn":
                    # Simulate a crash mid-write: a prefix of the record
                    # reaches the disk, then the process "dies" — further
                    # appends from this (doomed) process go nowhere.
                    cut = max(1, len(data) // 2)
                    self._file.write(data[:cut])
                    self._file.flush()
                    os.fsync(self._file.fileno())
                    self._wedged = True
                    return
            self._file.write(data)
            self._pending_sync += 1
            if sync or self._pending_sync >= self.fsync_batch:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._pending_sync = 0
            else:
                self._file.flush()

    def sync(self) -> None:
        """Force any batched appends to stable storage."""
        with self._lock:
            if self._file.closed or self._wedged:
                return
            self._file.flush()
            os.fsync(self._file.fileno())
            self._pending_sync = 0

    def close(self, clean: bool = False) -> None:
        """Close the journal; ``clean`` appends a synced shutdown marker."""
        if clean:
            self.append({"type": "clean"}, sync=True)
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if not self._wedged:
                    os.fsync(self._file.fileno())
                self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    # -- recovery ---------------------------------------------------------

    def _truncate_to(self, size: int) -> None:
        """Drop a torn tail by rewriting the accepted prefix atomically."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        register_temp(tmp)
        try:
            with open(self.path, "rb") as source, open(tmp, "wb") as target:
                target.write(source.read(size))
                target.flush()
                os.fsync(target.fileno())
            os.replace(tmp, self.path)
        finally:
            unregister_temp(tmp)
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @classmethod
    def replay(cls, path: Union[str, Path]) -> JournalReplay:
        """Read every intact record; never raises on torn/corrupt tails.

        A missing file replays as empty.  The accepted prefix ends at the
        first record whose prefix overruns the file, whose lengths are
        insane, whose CRC mismatches, or whose header is not a JSON
        object; everything beyond it counts as ``dropped_bytes``.
        """
        result = JournalReplay()
        try:
            data = Path(path).read_bytes()
        except OSError:
            return result
        if not data.startswith(MAGIC):
            result.torn = bool(data)
            result.dropped_bytes = len(data)
            return result
        offset = len(MAGIC)
        result.valid_size = offset
        total = len(data)
        while offset < total:
            if offset + _RECORD.size > total:
                result.torn = True
                break
            header_len, blob_len, crc = _RECORD.unpack_from(data, offset)
            if header_len > _MAX_HEADER_BYTES or blob_len > _MAX_BLOB_BYTES:
                result.torn = True
                break
            body_start = offset + _RECORD.size
            body_end = body_start + header_len + blob_len
            if body_end > total:
                result.torn = True
                break
            body = data[body_start:body_end]
            if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                result.torn = True
                break
            try:
                header = json.loads(body[:header_len].decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                result.torn = True
                break
            if not isinstance(header, dict):
                result.torn = True
                break
            result.records.append((header, bytes(body[header_len:])))
            offset = body_end
            result.valid_size = offset
        result.dropped_bytes = total - result.valid_size
        return result
