"""The service tier's wire format: length-prefixed JSON + binary frames.

Every connection in the service stack — work queue ↔ worker, bounds client
↔ bounds server — speaks the same framing:

.. code-block:: text

    +----------------+----------------+----------------+--------------+
    | header_len u32 | blob_len   u64 |  header (JSON) |  blob bytes  |
    +----------------+----------------+----------------+--------------+
          network byte order (``!IQ``)   UTF-8            opaque

The **header** is a small JSON object (message type, job ids, bounds);
the **blob** carries bulk binary payloads — path-table images
(:meth:`repro.symbolic.arena.PathTable.to_bytes`), pickled query contexts
and pickled contribution lists — without base64 inflation or JSON escaping.
Messages that need no bulk payload leave the blob empty.

Float fidelity: bounds cross the wire inside the JSON header.  Python's
``json`` module serialises floats with ``repr``, which round-trips every
finite double exactly, and (with ``allow_nan``, the default) spells the
IEEE specials as ``Infinity``/``-Infinity``/``NaN`` — which its parser
reads back.  Both ends of every connection are this codebase, so the
non-standard spellings are safe, and **bounds decoded from a frame are
bit-identical to the floats that were encoded** — the wire never moves a
bound.

Blob payloads between queue and workers are pickled Python objects: the
work-queue port must only be exposed to trusted hosts (the same trust
boundary as ``multiprocessing`` pools).  The bounds front end
(:mod:`repro.service.server`) never unpickles client input.

**Frame integrity (v2).**  Senders set the top bit of ``header_len`` and
append a CRC32 of ``header + blob`` to the prefix::

    +---------------------------+--------------+-----------+--------+------+
    | 0x80000000 | header_len   | blob_len u64 | crc32 u32 | header | blob |
    +---------------------------+--------------+-----------+--------+------+

Receivers verify the checksum and raise :class:`FrameCorrupted` — a typed
:class:`ServiceFault` — on mismatch, so bytes damaged in flight (or by the
``corrupt`` fault action) surface as a typed service error instead of a
JSON decode error deep in a handler.  Unflagged (v1) frames are still
accepted, so mixed-version fleets interoperate during a rolling upgrade.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import time
import zlib
from typing import Iterable, Optional, Sequence

from ..analysis.engine import DenotationBounds
from ..intervals import Interval
from .. import faults

__all__ = [
    "ConnectionClosed",
    "DeadlineExceeded",
    "ERROR_CODES",
    "FrameCorrupted",
    "ProtocolError",
    "ServerBusy",
    "ServiceError",
    "ServiceFault",
    "WorkerLost",
    "bounds_from_wire",
    "bounds_to_wire",
    "error_from_frame",
    "hash_bytes",
    "recv_exact",
    "recv_frame",
    "send_frame",
    "targets_from_wire",
    "targets_to_wire",
]

#: Frame prefix: header length (u32) + blob length (u64), network order.
_FRAME = struct.Struct("!IQ")

#: Appended to the v2 prefix: CRC32 of ``header + blob``.
_FRAME_CRC = struct.Struct("!I")

#: Top bit of ``header_len``: this frame carries a CRC32 (format v2).
#: Headers are capped at 16 MiB, so the bit is never set by a v1 length.
_CRC_FLAG = 0x80000000

#: Upper bound on one frame's JSON header — a corrupted or non-protocol
#: peer (e.g. an HTTP client poking the port) fails fast instead of making
#: the receiver allocate gigabytes.
_MAX_HEADER_BYTES = 16 * 1024 * 1024

#: Upper bound on one frame's blob (path tables of the largest supported
#: workloads are tens of MB; 4 GiB leaves vast headroom while still
#: rejecting garbage lengths).
_MAX_BLOB_BYTES = 4 * 1024 * 1024 * 1024


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a well-formed frame."""


# ---------------------------------------------------------------------------
# Typed error taxonomy
# ---------------------------------------------------------------------------
#
# Every failure the service tier can hand a client is one of these, each
# with a stable wire ``code`` carried in the error frame, so callers can
# branch on the *kind* of failure (retry on BUSY, give up on
# DEADLINE_EXCEEDED, alert on WORKER_LOST) instead of grepping message
# strings.

class ServiceError(RuntimeError):
    """Base of every typed service failure (also raised for untyped errors)."""

    #: Stable wire code, or ``None`` for untyped server-side exceptions.
    code: Optional[str] = None


class ServiceFault(ServiceError):
    """An injected or infrastructure fault surfaced as a query failure."""

    code = "FAULT"


class ServerBusy(ServiceError):
    """The server is at its in-flight query limit; retry after a backoff."""

    code = "BUSY"

    def __init__(self, message: str, retry_after: float = 0.1) -> None:
        super().__init__(message)
        #: Suggested client-side backoff (seconds) before retrying.
        self.retry_after = retry_after


class DeadlineExceeded(ServiceError):
    """The caller's deadline passed before the query (or job) completed."""

    code = "DEADLINE_EXCEEDED"


class WorkerLost(ServiceError):
    """Every allowed attempt of a job lost its worker (death, wedge, timeout)."""

    code = "WORKER_LOST"


class FrameCorrupted(ServiceFault, ProtocolError):
    """A frame failed its CRC32 check — bytes were damaged in flight.

    Inherits both :class:`ServiceFault` (clients get a typed service
    error, ``code == "FAULT"``) and :class:`ProtocolError` (the queue and
    worker loops treat the connection as damaged and recover exactly as
    they do for malformed frames: drop the connection, requeue the job).
    """


#: code -> exception class, for decoding error frames client-side.
ERROR_CODES = {
    cls.code: cls for cls in (ServiceFault, ServerBusy, DeadlineExceeded, WorkerLost)
}


def error_from_frame(header: dict) -> ServiceError:
    """Build the typed exception an ``error`` frame describes.

    Frames with a recognised ``code`` decode to the matching subclass
    (``BUSY`` frames carry their ``retry_after`` hint); everything else —
    including frames from older servers — decodes to plain
    :class:`ServiceError`, so the historical ``except ServiceError`` pattern
    keeps working unchanged.
    """
    message = f"{header.get('exc_type')}: {header.get('error')}"
    code = header.get("code")
    cls = ERROR_CODES.get(code) if code else None
    if cls is ServerBusy:
        return ServerBusy(message, retry_after=float(header.get("retry_after", 0.1)))
    if cls is not None:
        return cls(message)
    return ServiceError(message)


def send_frame(
    sock: socket.socket, header: dict, blob: bytes = b"", site: Optional[str] = None
) -> None:
    """Send one frame: JSON ``header`` plus an optional binary ``blob``.

    ``site`` names this send as a fault-injection point (see
    :mod:`repro.faults`); with no plan installed the check is a single
    ``None`` test.  Injected actions: ``drop`` (the frame silently never
    leaves), ``truncate`` (half the frame is sent, then the socket is
    hard-closed — the peer sees EOF mid-frame), ``delay`` (sleep before
    sending), ``slowloris`` (the frame trickles out in small pieces) and
    ``corrupt`` (one payload byte is flipped after the CRC is computed,
    so the receiver raises :class:`FrameCorrupted`).
    """
    payload = json.dumps(header, separators=(",", ":"), ensure_ascii=False).encode()
    crc = zlib.crc32(payload)
    if blob:
        crc = zlib.crc32(blob, crc)
    frame = (
        _FRAME.pack(len(payload) | _CRC_FLAG, len(blob))
        + _FRAME_CRC.pack(crc & 0xFFFFFFFF)
        + payload
    )
    action = faults.decide(site) if site is not None else None
    if action is not None:
        plan = faults.active()
        if action.kind == "drop":
            return
        if action.kind == "truncate":
            data = frame + blob
            cut = max(1, len(data) // 2)
            try:
                sock.sendall(data[:cut])
            finally:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()
            return
        if action.kind == "corrupt":
            # Flip one byte in the middle of the JSON header, *after* the
            # CRC was computed: the frame arrives complete but damaged,
            # and the receiver's checksum catches it.
            data = bytearray(frame + blob)
            index = _FRAME.size + _FRAME_CRC.size + max(0, len(payload) // 2)
            data[index] ^= 0xFF
            sock.sendall(bytes(data))
            return
        if action.kind == "slowloris":
            pause = action.param if action.param is not None else plan.default_param()
            data = frame + blob
            step = max(1, len(data) // 64)
            for offset in range(0, len(data), step):
                sock.sendall(data[offset : offset + step])
                time.sleep(pause)
            return
        if action.kind == "delay":
            time.sleep(action.param if action.param is not None else plan.default_param())
    sock.sendall(frame)
    if blob:
        sock.sendall(blob)


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`."""
    if count == 0:
        return b""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {count} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[dict, bytes]:
    """Receive one frame, returning ``(header, blob)``.

    Raises :class:`ConnectionClosed` on EOF (including EOF exactly between
    frames — the normal way a peer hangs up), :class:`ProtocolError` on
    malformed prefixes or headers, and :class:`FrameCorrupted` when a v2
    frame fails its CRC32 check.
    """
    prefix = recv_exact(sock, _FRAME.size)
    header_len, blob_len = _FRAME.unpack(prefix)
    expected_crc = None
    if header_len & _CRC_FLAG:
        header_len &= ~_CRC_FLAG
        (expected_crc,) = _FRAME_CRC.unpack(recv_exact(sock, _FRAME_CRC.size))
    if header_len > _MAX_HEADER_BYTES or blob_len > _MAX_BLOB_BYTES:
        raise ProtocolError(
            f"frame sizes out of range (header {header_len}B, blob {blob_len}B)"
        )
    payload = recv_exact(sock, header_len)
    blob = recv_exact(sock, blob_len)
    if expected_crc is not None:
        crc = zlib.crc32(payload)
        if blob:
            crc = zlib.crc32(blob, crc)
        if (crc & 0xFFFFFFFF) != expected_crc:
            raise FrameCorrupted(
                f"frame CRC mismatch (header {header_len}B, blob {blob_len}B)"
            )
    try:
        header = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame header is not valid JSON: {error}") from error
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be a JSON object, got {type(header).__name__}")
    return header, blob


def hash_bytes(payload: bytes) -> str:
    """Content address of a binary payload (blake2b-128 hex).

    Used as the resource key of path-table images and pickled query
    contexts in the work queue: equal bytes always produce equal keys, so
    repeated queries over one compiled path set ship the table once per
    worker, not once per query.
    """
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# Bounds <-> JSON
# ---------------------------------------------------------------------------

def bounds_to_wire(bounds: Iterable[DenotationBounds]) -> list[dict]:
    """Encode denotation bounds as JSON-able records (floats via ``repr``)."""
    return [
        {
            "target": [entry.target.lo, entry.target.hi],
            "lower": entry.lower,
            "upper": entry.upper,
        }
        for entry in bounds
    ]


def bounds_from_wire(payload: Sequence[dict]) -> list[DenotationBounds]:
    """Decode :func:`bounds_to_wire` records back into ``DenotationBounds``."""
    decoded = []
    for record in payload:
        lo, hi = record["target"]
        decoded.append(
            DenotationBounds(
                target=Interval(float(lo), float(hi)),
                lower=float(record["lower"]),
                upper=float(record["upper"]),
            )
        )
    return decoded


def targets_to_wire(targets: Iterable[Interval]) -> list[list[float]]:
    """Encode query targets as ``[lo, hi]`` pairs."""
    return [[target.lo, target.hi] for target in targets]


def targets_from_wire(payload: Sequence[Sequence[float]]) -> tuple[Interval, ...]:
    """Decode ``[lo, hi]`` pairs into :class:`Interval` targets."""
    return tuple(Interval(float(lo), float(hi)) for lo, hi in payload)
