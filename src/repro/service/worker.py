"""The remote bound-analysis worker: ``python -m repro.service.worker``.

A worker connects to a :class:`~repro.service.queue.WorkQueueServer`,
announces its resource-cache capacity, and then serves jobs one at a time:

* ``resource`` frames populate a small LRU of decoded payloads — path
  tables reconstructed zero-copy with
  :meth:`~repro.symbolic.arena.PathTable.from_buffer` over the received
  bytes, and query contexts unpickled into
  ``(targets, options, resolved analyzers)`` with the analyzer registry
  primed (:func:`~repro.analysis.registry.ensure_analyzers_registered`) —
  exactly the per-process caches a shared-memory pool worker keeps, one
  network hop out;
* ``chunk`` jobs run :func:`repro.analysis.parallel.analyze_table_slice`
  over the referenced ``[start, stop)`` table range (or over an explicit
  ``indices`` list — the refinement scheduler's scattered worst-gap
  subsets) — the **identical** columnar loop the in-process backends run,
  which is what keeps socket bounds bit-identical to serial bounds;
* ``sleep`` jobs idle for a requested duration (the queue's
  deterministic timeout/retry test vehicle);
* ``shutdown`` frames end the process.

The LRU's eviction discipline (insert on receive, touch on use, evict
oldest past capacity) is mirrored by the dispatcher on the other end of
the connection, so the server always knows which resources this worker
still holds and never sends a table twice while it is cached.

Workers are crash-isolated by design: job failures are reported as
``error`` frames (with the worker traceback) and the worker keeps
serving; a lost connection triggers bounded reconnection, so a server
restart or a dropped wedged connection self-heals.
"""

from __future__ import annotations

import argparse
import os
import pickle
import random
import socket
import threading
import time
import traceback
from collections import OrderedDict
from typing import Optional

from .. import faults
from ..symbolic.arena import PathTable
from .protocol import ConnectionClosed, ProtocolError, recv_frame, send_frame

__all__ = ["BoundWorker", "main"]

#: Default number of decoded resources (tables + contexts) one worker keeps.
DEFAULT_CACHE_CAP = 8

#: Default heartbeat interval (seconds).  Heartbeats let the queue reap a
#: worker that dies or wedges mid-job within a few intervals instead of
#: waiting out the whole job timeout; ``0`` disables them (the queue then
#: falls back to its coarse per-read timeout).
DEFAULT_HEARTBEAT_INTERVAL = 0.5


class BoundWorker:
    """One worker process's connection-and-serve loop.

    ``reconnect_attempts`` bounds how many consecutive failed connection
    attempts the worker tolerates before giving up.  The wait between
    attempts grows exponentially from ``reconnect_delay`` up to
    ``reconnect_max_delay``, with full jitter (a uniform draw over
    ``[0, backoff]``) so a fleet of workers losing one server does not
    reconnect in lockstep; a successful connection resets the count, so a
    worker dropped by a job timeout keeps coming back for the lifetime of
    the queue.  ``jitter_seed`` pins the jitter RNG for deterministic
    tests.
    """

    def __init__(
        self,
        endpoint: str,
        cache_cap: int = DEFAULT_CACHE_CAP,
        reconnect_attempts: int = 50,
        reconnect_delay: float = 0.1,
        reconnect_max_delay: float = 5.0,
        jitter_seed: Optional[int] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> None:
        from ..analysis.config import parse_endpoint

        self.address = parse_endpoint(endpoint)
        self.cache_cap = max(1, cache_cap)
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.reconnect_max_delay = reconnect_max_delay
        self.heartbeat_interval = max(0.0, heartbeat_interval)
        self._jitter = random.Random(jitter_seed)
        #: Serialises heartbeat frames against result/error frames so the
        #: two sender threads never interleave bytes mid-frame.
        self._send_lock = threading.Lock()
        #: key -> decoded resource: ("table", PathTable) or
        #: ("context", (targets, options, analyzers)).
        self._cache: "OrderedDict[str, tuple[str, object]]" = OrderedDict()
        self.jobs_done = 0

    def _reconnect_delay(self, failures: int) -> float:
        """Backoff before reconnect attempt ``failures`` (1-based).

        Exponential with full jitter: ``uniform(0, min(max_delay,
        base * 2**(failures-1)))``.  Full jitter (rather than a +/- fudge)
        is what actually de-synchronises a worker fleet: any two workers'
        waits are independent draws over the whole window.
        """
        backoff = min(self.reconnect_max_delay, self.reconnect_delay * (2 ** (failures - 1)))
        return self._jitter.uniform(0.0, backoff)

    # ------------------------------------------------------------------
    # Resource cache (mirrored by the server-side dispatcher)
    # ------------------------------------------------------------------
    def _store(self, key: str, kind: str, blob: bytes) -> None:
        action = faults.decide("worker.attach")
        if action is not None and action.kind == "fail":
            # Models a shared-memory/table attach failure: the job that
            # needed this resource errors, the queue retries elsewhere.
            raise faults.FaultInjected(f"injected attach failure for resource {key!r}")
        if kind == "table":
            # bytes are immutable and owned by this frame: the table's array
            # views alias them directly, no copy.
            value: object = PathTable.from_buffer(memoryview(blob), keep_alive=blob)
        elif kind == "context":
            from ..analysis.registry import ensure_analyzers_registered, resolve_analyzers

            targets, options, specs = pickle.loads(blob)
            ensure_analyzers_registered(specs)
            value = (targets, options, resolve_analyzers(options))
        else:
            raise ProtocolError(f"unknown resource kind {kind!r}")
        self._cache[key] = (kind, value)
        while len(self._cache) > self.cache_cap:
            _, (old_kind, old_value) = self._cache.popitem(last=False)
            if old_kind == "table":
                old_value.release()  # type: ignore[union-attr]

    def _fetch(self, key: str, kind: str):
        entry = self._cache.get(key)
        if entry is None or entry[0] != kind:
            # The server believed this worker still held the resource (LRU
            # mirror drift can only come from a worker restart mid-frame);
            # reporting an error makes the queue retry, and the retry's
            # fresh dispatch re-sends the payload.
            raise KeyError(f"resource {key!r} ({kind}) not cached")
        self._cache.move_to_end(key)
        return entry[1]

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def _run_job(self, header: dict) -> bytes:
        """Execute one job frame, returning the pickled result payload."""
        action = faults.decide("worker.job")
        if action is not None:
            if action.kind == "die":
                # The SIGKILL primitive: no cleanup, no goodbye frame — the
                # queue sees the connection drop with the job in flight.
                os._exit(1)
            if action.kind == "fail":
                raise faults.FaultInjected("injected job failure")
            if action.kind == "delay":
                plan = faults.active()
                time.sleep(
                    action.param if action.param is not None
                    else (plan.default_param() if plan else 0.0)
                )
        kind = header.get("kind")
        if kind == "chunk":
            from ..analysis.parallel import analyze_table_slice

            table = self._fetch(header["table"], "table")
            targets, options, analyzers = self._fetch(header["context"], "context")
            raw_indices = header.get("indices")
            contributions = analyze_table_slice(
                table, int(header["start"]), int(header["stop"]),
                targets, options, analyzers,
                indices=tuple(int(i) for i in raw_indices) if raw_indices is not None else None,
            )
            result = (int(header["index"]), contributions)
            self.jobs_done += 1
            return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        if kind == "sleep":
            time.sleep(float(header["seconds"]))
            self.jobs_done += 1
            return pickle.dumps(None)
        raise ProtocolError(f"unknown job kind {kind!r}")

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, sock: socket.socket, stop: threading.Event) -> None:
        """Send ``heartbeat`` frames every interval until told to stop.

        Runs on its own thread so a long-running job still proves the
        process is alive; the send lock keeps beats from interleaving with
        result frames.  Any send error just ends the loop — the dispatcher
        notices the dead connection through its own reads.
        """
        while not stop.wait(self.heartbeat_interval):
            try:
                with self._send_lock:
                    send_frame(sock, {"type": "heartbeat"}, site="worker.send.heartbeat")
            except OSError:
                return

    def _serve_connection(self, sock: socket.socket) -> bool:
        """Serve one connection; returns True when the server said shutdown."""
        with self._send_lock:
            send_frame(sock, {
                "type": "hello",
                "cache_cap": self.cache_cap,
                "pid": os.getpid(),
                "heartbeat_interval": self.heartbeat_interval,
            })
        stop_heartbeat = threading.Event()
        heartbeat: Optional[threading.Thread] = None
        if self.heartbeat_interval > 0:
            heartbeat = threading.Thread(
                target=self._heartbeat_loop, args=(sock, stop_heartbeat),
                name="repro-worker-heartbeat", daemon=True,
            )
            heartbeat.start()
        try:
            while True:
                header, blob = recv_frame(sock)
                kind = header.get("type")
                if kind == "resource":
                    self._store(header["key"], header["kind"], blob)
                elif kind == "job":
                    try:
                        payload = self._run_job(header)
                    except Exception as error:  # noqa: BLE001 - reported to the queue
                        with self._send_lock:
                            send_frame(sock, {
                                "type": "error",
                                "job_id": header.get("job_id"),
                                "exc_type": type(error).__name__,
                                "error": f"{error}\n{traceback.format_exc()}",
                            }, site="worker.send.error")
                    else:
                        with self._send_lock:
                            send_frame(
                                sock,
                                {"type": "result", "job_id": header.get("job_id")},
                                payload,
                                site="worker.send.result",
                            )
                elif kind == "shutdown":
                    return True
                else:
                    raise ProtocolError(f"unknown frame type {kind!r}")
        finally:
            stop_heartbeat.set()
            if heartbeat is not None:
                heartbeat.join(timeout=2.0)

    def run(self) -> None:
        """Connect (and reconnect) to the queue until it shuts us down."""
        failures = 0
        while True:
            try:
                action = faults.decide("worker.connect")
                if action is not None and action.kind == "fail":
                    raise OSError("injected connect failure")
                sock = socket.create_connection(self.address, timeout=10.0)
            except OSError:
                failures += 1
                if failures > self.reconnect_attempts:
                    return
                time.sleep(self._reconnect_delay(failures))
                continue
            failures = 0
            # Connections are long-lived: no per-recv timeout (a worker may
            # legitimately idle for minutes between queries).
            sock.settimeout(None)
            try:
                if self._serve_connection(sock):
                    return
            except (ConnectionClosed, ConnectionError, ProtocolError, OSError):
                # Server gone, or it dropped us (job timeout): the resource
                # cache survives, but its server-side mirror does not — a
                # fresh connection starts with an empty mirror, so the
                # server simply re-sends what it needs to.
                pass
            finally:
                sock.close()


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Bound-analysis worker for a repro work-queue server.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="endpoint of the WorkQueueServer to serve",
    )
    parser.add_argument(
        "--cache-cap", type=int, default=DEFAULT_CACHE_CAP,
        help="how many decoded resources (path tables, contexts) to cache",
    )
    parser.add_argument(
        "--reconnect-attempts", type=int, default=50,
        help="consecutive failed connection attempts before giving up",
    )
    parser.add_argument(
        "--reconnect-delay", type=float, default=0.1,
        help="base reconnect backoff in seconds (doubles per failure, with jitter)",
    )
    parser.add_argument(
        "--reconnect-max-delay", type=float, default=5.0,
        help="cap on the reconnect backoff in seconds",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=DEFAULT_HEARTBEAT_INTERVAL,
        help="heartbeat interval in seconds (0 disables heartbeats)",
    )
    args = parser.parse_args(argv)
    BoundWorker(
        args.connect,
        cache_cap=args.cache_cap,
        reconnect_attempts=args.reconnect_attempts,
        reconnect_delay=args.reconnect_delay,
        reconnect_max_delay=args.reconnect_max_delay,
        heartbeat_interval=args.heartbeat,
    ).run()


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    main()
