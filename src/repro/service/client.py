"""The blocking client library of the bounds service.

:class:`ServiceClient` talks to a :class:`repro.service.server.BoundsServer`
over one persistent connection:

.. code-block:: python

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1:7753") as client:
        reply = client.bounds(
            "sample uniform(0, 1)",
            targets=[(0.0, 0.5)],
            stream=True,
            on_partial=lambda bounds, done: print("first bound:", bounds),
        )
        print(reply.bounds, reply.cache)

Replies carry bounds decoded to the exact floats the server computed
(see :mod:`repro.service.protocol` for why the wire is lossless), the
canonical program hash, and — for streamed queries — every anytime
partial bound the server emitted before the final result.
"""

from __future__ import annotations

import argparse
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from ..analysis.config import parse_endpoint
from ..analysis.engine import DenotationBounds
from ..intervals import Interval
from .protocol import (
    DeadlineExceeded,
    ProtocolError,
    ServerBusy,
    ServiceError,
    ServiceFault,
    WorkerLost,
    bounds_from_wire,
    error_from_frame,
    recv_frame,
    send_frame,
)

__all__ = [
    "BoundsReply",
    "DeadlineExceeded",
    "ServerBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceFault",
    "WorkerLost",
    "main",
]

TargetLike = Union[Interval, Sequence[float]]


@dataclass
class BoundsReply:
    """One completed bounds query as seen by the client."""

    bounds: list[DenotationBounds]
    program_hash: str
    cache: str  # "hit" | "miss" — the compiled-program cache
    paths: int
    seconds: float
    first_result_seconds: Optional[float]
    #: "hit" when the whole query (program + targets + options) was served
    #: from the server's memoised result cache without re-running analyzers.
    result_cache: str = "miss"
    #: Every anytime partial emitted before the result:
    #: ``(partial_bounds, paths_done)`` in arrival order.
    partials: list[tuple[list[DenotationBounds], int]] = field(default_factory=list)
    #: Gap-directed refinement rounds the server ran for this result
    #: (0 for ``refine="off"`` queries and result-cache hits).
    refine_rounds: int = 0

    @property
    def cache_hit(self) -> bool:
        return self.cache == "hit"


def _as_targets(targets: Iterable[TargetLike]) -> list[list[float]]:
    wire = []
    for target in targets:
        if isinstance(target, Interval):
            wire.append([target.lo, target.hi])
        else:
            lo, hi = target
            wire.append([float(lo), float(hi)])
    return wire


class ServiceClient:
    """A thread-safe blocking client for the bounds service.

    One TCP connection is opened lazily and reused across calls; requests
    are serialised by an internal lock (the protocol is strictly
    request/response per connection).  ``timeout`` bounds each wait for a
    reply frame — generous by default, since a cold query runs full
    symbolic execution server-side.
    """

    def __init__(self, endpoint: str, timeout: float = 300.0) -> None:
        self.address = parse_endpoint(endpoint)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self.address, timeout=self.timeout)
        return self._sock

    def _reset(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._reset()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, request: dict, on_frame) -> dict:
        """Send one request and feed reply frames to ``on_frame`` until done.

        ``on_frame(header)`` returns the final header to deliver, or None
        to keep reading (partial frames).  Any transport failure resets the
        connection so the next call reconnects cleanly.
        """
        with self._lock:
            sock = self._connection()
            try:
                send_frame(sock, request)
                while True:
                    header, _blob = recv_frame(sock)
                    if header.get("type") == "error":
                        # Typed taxonomy: BUSY -> ServerBusy (with
                        # retry_after), DEADLINE_EXCEEDED, WORKER_LOST,
                        # FAULT; untyped frames stay plain ServiceError.
                        raise error_from_frame(header)
                    final = on_frame(header)
                    if final is not None:
                        return final
            except (ConnectionError, OSError, ProtocolError):
                self._reset()
                raise

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """True when the server answers (raises on connection failure)."""
        reply = self._roundtrip(
            {"type": "ping"},
            lambda header: header if header.get("type") == "pong" else None,
        )
        return reply.get("type") == "pong"

    def stats(self) -> dict:
        """The server's program-cache statistics snapshot."""
        return self._roundtrip(
            {"type": "stats"},
            lambda header: header if header.get("type") == "stats" else None,
        )

    def bounds(
        self,
        program: str,
        targets: Iterable[TargetLike],
        options: Optional[dict] = None,
        stream: bool = False,
        on_partial: Optional[Callable[[list[DenotationBounds], int], None]] = None,
        deadline: Optional[float] = None,
        query_id: Optional[str] = None,
        resume_retries: int = 10,
        resume_backoff: float = 0.05,
    ) -> BoundsReply:
        """Guaranteed denotation bounds for ``program`` over ``targets``.

        ``program`` is SPCF source text; ``targets`` are intervals (either
        :class:`~repro.intervals.Interval` or ``(lo, hi)`` pairs);
        ``options`` is a dict of :class:`~repro.analysis.AnalysisOptions`
        fields applied server-side.  With ``stream=True`` the server runs a
        streamed query and pushes anytime partial bounds; each is decoded
        and handed to ``on_partial(bounds, paths_done)`` as it arrives (and
        collected on the reply's ``partials``), so callers see a first
        sound lower bound long before path exploration completes.

        ``deadline`` (seconds, relative) is propagated server-side all the
        way down to individual work-queue jobs and the refinement budget:
        if the query cannot finish in time, the server answers with a typed
        ``DEADLINE_EXCEEDED`` error (raised here as
        :class:`~repro.service.protocol.DeadlineExceeded`) instead of
        letting the query outlive its caller.

        ``query_id`` (optional) makes the query an **idempotent, resumable
        re-issue**: on a transport failure (connection lost, server
        restarted, frame corrupted in flight) the client reconnects with
        exponential backoff — up to ``resume_retries`` attempts, starting
        at ``resume_backoff`` seconds — and re-sends the same request
        together with how many partial frames it already received.  A
        durable server (``--state-dir``) dedupes on its journal and result
        store: finished work is served from disk, an interrupted
        ``refine="gap"`` query resumes from its last checkpointed round,
        and only the partials this client actually missed are replayed
        (partial frames carry a ``seq`` number; duplicates are dropped
        here).  Deadline and typed server errors are **not** retried.
        """
        request = {
            "type": "bounds",
            "program": program,
            "targets": _as_targets(targets),
            "stream": bool(stream),
        }
        if options:
            request["options"] = options
        if deadline is not None:
            request["deadline"] = float(deadline)
        if query_id is not None:
            request["query_id"] = str(query_id)
        partials: list[tuple[list[DenotationBounds], int]] = []
        max_seq = 0

        def on_frame(header: dict) -> Optional[dict]:
            nonlocal max_seq
            kind = header.get("type")
            if kind == "partial":
                seq = header.get("seq")
                if seq is not None:
                    seq = int(seq)
                    if seq <= max_seq:
                        return None  # replayed duplicate after a resume
                    max_seq = seq
                decoded = bounds_from_wire(header.get("bounds") or [])
                paths_done = int(header.get("paths_done", 0))
                partials.append((decoded, paths_done))
                if on_partial is not None:
                    on_partial(decoded, paths_done)
                return None
            if kind == "result":
                return header
            raise ProtocolError(f"unexpected frame type {kind!r}")

        attempts = 0
        while True:
            if query_id is not None:
                request["partials_seen"] = max_seq if max_seq else len(partials)
            try:
                header = self._roundtrip(request, on_frame)
                break
            except (ConnectionError, ProtocolError, OSError) as error:
                # Typed server-side errors (BUSY, DEADLINE_EXCEEDED, FAULT
                # frames) and plain timeouts are real answers, not transport
                # losses — never re-issued.  Client-side CRC failures
                # (FrameCorrupted is a ProtocolError here) and lost
                # connections are.
                if (
                    query_id is None
                    or isinstance(error, TimeoutError)
                    or (isinstance(error, ServiceError)
                        and not isinstance(error, ProtocolError))
                ):
                    raise
                attempts += 1
                if attempts > max(0, resume_retries):
                    raise
                time.sleep(min(resume_backoff * (2 ** (attempts - 1)), 2.0))
        return BoundsReply(
            bounds=bounds_from_wire(header.get("bounds") or []),
            program_hash=str(header.get("program_hash")),
            cache=str(header.get("cache")),
            paths=int(header.get("paths", 0)),
            seconds=float(header.get("seconds", 0.0)),
            first_result_seconds=header.get("first_result_seconds"),
            result_cache=str(header.get("result_cache", "miss")),
            partials=partials,
            refine_rounds=int(header.get("refine_rounds", 0)),
        )


def main(argv: Optional[list] = None) -> None:
    """Operator CLI: ``python -m repro.service.client --stats HOST:PORT``.

    Prints the server's full telemetry frame as JSON — program/result cache
    counters, executor degradation and reaping totals, and the durability
    section (journal replay counts, store hits, resumed vs recomputed
    rounds).
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Client-side tools for the bounds service.",
    )
    parser.add_argument("--stats", metavar="HOST:PORT",
                        help="fetch and print the server's stats frame as JSON")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="reply timeout in seconds")
    args = parser.parse_args(argv)
    if not args.stats:
        parser.error("nothing to do: pass --stats HOST:PORT")
    with ServiceClient(args.stats, timeout=args.timeout) as client:
        stats = client.stats()
    print(json.dumps(stats, indent=2, sort_keys=True))


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    main()
