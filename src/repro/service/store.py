"""Content-addressed on-disk state store for warm server restarts.

The bounds server keeps two in-memory caches — the compiled-program LRU
(:class:`repro.service.server.ProgramCache`) and the whole-query result
cache — that a process death used to throw away.  With ``--state-dir``
the server mirrors both to disk here, so a restarted server answers
repeat queries at ~cache-hit latency:

``<state-dir>/programs/<program_hash>.bin``
    Path-table images (:meth:`repro.symbolic.arena.PathTable.to_bytes`)
    plus a small JSON meta header (truncated/pruned path counts), keyed
    by the existing :func:`repro.analysis.model.program_hash` — the same
    content address the in-memory cache and the work queue already use.

``<state-dir>/results/<key_hash>.json``
    Whole result frames, keyed by a blake2b hash of the in-memory result
    key (program hash + targets + analysis options + deadline bucket).

``<state-dir>/checkpoints/<key_hash>.bin``
    Refinement checkpoints (:meth:`RefinementScheduler.to_bytes`),
    rewritten after every completed round and deleted on completion.

``<state-dir>/server.wal``
    The server's write-ahead journal (:mod:`repro.service.journal`).

Every entry is a single file of ``u32 CRC32 | payload``: loads verify the
checksum and **drop** (unlink) corrupt entries instead of serving them —
a recomputation is always available, a wrong answer never is.  Writes go
through a ``.tmp`` sibling + ``os.replace`` so readers never observe a
half-written entry, and the temp path is registered with the
:mod:`repro.service.journal` atexit sweep so crashed runs leave no
strays.  Directories are LRU-pruned by access time against an entry
budget.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Optional, Union

from .journal import register_temp, unregister_temp

__all__ = ["StateStore"]

_CRC = struct.Struct("!I")


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    register_temp(tmp)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        unregister_temp(tmp)
        try:
            os.unlink(tmp)
        except OSError:
            pass


class StateStore:
    """CRC-verified, LRU-pruned persistence for server caches.

    Thread-safe for the server's use (engine threads save, the event-loop
    thread never touches disk directly).  All loads verify the CRC32 the
    entry was saved with; a mismatch unlinks the entry and returns
    ``None`` so the caller recomputes.
    """

    def __init__(
        self,
        root: Union[str, Path],
        program_limit: int = 256,
        result_limit: int = 4096,
    ) -> None:
        self.root = Path(root)
        self.programs_dir = self.root / "programs"
        self.results_dir = self.root / "results"
        self.checkpoints_dir = self.root / "checkpoints"
        for directory in (self.programs_dir, self.results_dir, self.checkpoints_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.program_limit = max(1, int(program_limit))
        self.result_limit = max(1, int(result_limit))
        self._lock = threading.Lock()
        # Telemetry (exposed through the server's stats frame).
        self.saves = 0
        self.loads = 0
        self.corrupt_dropped = 0

    @property
    def journal_path(self) -> Path:
        return self.root / "server.wal"

    # -- framed entries ---------------------------------------------------

    def _save(self, path: Path, payload: bytes, limit: int, directory: Path) -> None:
        _atomic_write(path, _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF) + payload)
        with self._lock:
            self.saves += 1
        self._prune(directory, limit)

    def _load(self, path: Path) -> Optional[bytes]:
        try:
            data = path.read_bytes()
        except OSError:
            return None
        with self._lock:
            self.loads += 1
        if len(data) < _CRC.size:
            self._drop_corrupt(path)
            return None
        (crc,) = _CRC.unpack_from(data)
        payload = data[_CRC.size :]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            self._drop_corrupt(path)
            return None
        try:  # refresh LRU recency for the pruner
            os.utime(path)
        except OSError:
            pass
        return payload

    def _drop_corrupt(self, path: Path) -> None:
        with self._lock:
            self.corrupt_dropped += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def _prune(self, directory: Path, limit: int) -> None:
        try:
            entries = [
                entry
                for entry in os.scandir(directory)
                if entry.is_file() and not entry.name.endswith(".tmp")
            ]
        except OSError:
            return
        if len(entries) <= limit:
            return
        entries.sort(key=lambda entry: entry.stat().st_mtime)
        for entry in entries[: len(entries) - limit]:
            try:
                os.unlink(entry.path)
            except OSError:
                pass

    # -- programs ---------------------------------------------------------

    def save_program(self, key: str, table_image: bytes, meta: dict) -> None:
        """Persist one compiled program: JSON meta + raw path-table image."""
        header = json.dumps(meta, separators=(",", ":")).encode()
        payload = _CRC.pack(len(header)) + header + table_image
        self._save(self.programs_dir / f"{key}.bin", payload, self.program_limit, self.programs_dir)

    def load_program(self, key: str) -> Optional[tuple[dict, bytes]]:
        """Load ``(meta, table_image)`` or ``None`` (missing/corrupt)."""
        payload = self._load(self.programs_dir / f"{key}.bin")
        if payload is None or len(payload) < _CRC.size:
            return None
        (header_len,) = _CRC.unpack_from(payload)
        if _CRC.size + header_len > len(payload):
            self._drop_corrupt(self.programs_dir / f"{key}.bin")
            return None
        try:
            meta = json.loads(payload[_CRC.size : _CRC.size + header_len].decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._drop_corrupt(self.programs_dir / f"{key}.bin")
            return None
        return meta, payload[_CRC.size + header_len :]

    def has_program(self, key: str) -> bool:
        return (self.programs_dir / f"{key}.bin").exists()

    # -- results ----------------------------------------------------------

    def save_result(self, key_hash: str, result: dict) -> None:
        payload = json.dumps(result, separators=(",", ":"), ensure_ascii=False).encode()
        self._save(self.results_dir / f"{key_hash}.json", payload, self.result_limit, self.results_dir)

    def load_result(self, key_hash: str) -> Optional[dict]:
        payload = self._load(self.results_dir / f"{key_hash}.json")
        if payload is None:
            return None
        try:
            result = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._drop_corrupt(self.results_dir / f"{key_hash}.json")
            return None
        if not isinstance(result, dict):
            self._drop_corrupt(self.results_dir / f"{key_hash}.json")
            return None
        return result

    # -- refinement checkpoints ------------------------------------------

    def save_checkpoint(self, key_hash: str, state: bytes) -> None:
        self._save(
            self.checkpoints_dir / f"{key_hash}.bin",
            state,
            self.result_limit,
            self.checkpoints_dir,
        )

    def load_checkpoint(self, key_hash: str) -> Optional[bytes]:
        return self._load(self.checkpoints_dir / f"{key_hash}.bin")

    def drop_checkpoint(self, key_hash: str) -> None:
        try:
            os.unlink(self.checkpoints_dir / f"{key_hash}.bin")
        except OSError:
            pass

    # -- telemetry --------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "saves": self.saves,
                "loads": self.loads,
                "corrupt_dropped": self.corrupt_dropped,
            }
