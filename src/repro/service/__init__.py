"""Bounds as a service: the distributed tier of the GuBPI engine.

This package turns the in-process bound engine into a small service stack,
without moving a single bound:

* :mod:`repro.service.protocol` — the shared wire format: length-prefixed
  frames carrying a JSON header plus an opaque binary blob, and the exact
  float encoding that keeps bounds bit-identical across the wire.
* :mod:`repro.service.queue` — :class:`WorkQueueServer`, the TCP work queue
  behind ``AnalysisOptions(executor="socket")``: chunk jobs referencing
  content-addressed path-table images, dispatched to connected workers with
  per-job timeout, bounded retry and requeue-on-worker-death.
* :mod:`repro.service.worker` — the worker process
  (``python -m repro.service.worker --connect host:port``) that attaches to
  a queue and runs the identical columnar chunk loop the process pool runs.
* :mod:`repro.service.server` — the asyncio bounds front end
  (``python -m repro.service.server``) serving whole posterior-bound
  queries for multiple tenants over one shared, LRU-bounded
  compiled-program cache keyed by canonical program hash.
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking client
  library (``client.bounds(program, targets)``) with streamed anytime
  partial bounds and idempotent crash resume (``query_id``).
* :mod:`repro.service.journal` — :class:`Journal`, the crash-safe
  append-only write-ahead log (CRC32-checksummed records, torn-tail
  tolerant replay) behind both the work queue and the bounds front end.
* :mod:`repro.service.store` — :class:`StateStore`, the content-addressed
  on-disk store of compiled-program images, whole-query results and
  refinement checkpoints (``--state-dir``).

Trust model: frames carry pickled analysis payloads between queue and
workers, so the work-queue port must only be reachable by trusted hosts —
the same boundary as ``multiprocessing`` itself.  The bounds front end
speaks pure JSON.
"""

from .journal import Journal, JournalReplay
from .protocol import (
    ConnectionClosed,
    DeadlineExceeded,
    FrameCorrupted,
    ProtocolError,
    ServerBusy,
    ServiceError,
    ServiceFault,
    WorkerLost,
)
from .queue import (
    JobError,
    JobRetriesExhausted,
    QueueClosed,
    QueueRecovery,
    WorkQueueServer,
    replay_queue_journal,
)
from .store import StateStore

#: Server- and client-side exports resolve lazily: importing them eagerly
#: would load the submodule during its own ``python -m repro.service.server``
#: / ``python -m repro.service.client`` startup (runpy warns about the
#: double import), and queue workers never need either.
_LAZY_EXPORTS = {
    "BoundsServer": "server",
    "ProgramCache": "server",
    "serve_in_background": "server",
    "BoundsReply": "client",
    "ServiceClient": "client",
}


def __getattr__(name: str):
    submodule = _LAZY_EXPORTS.get(name)
    if submodule is not None:
        import importlib

        return getattr(importlib.import_module(f".{submodule}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BoundsReply",
    "BoundsServer",
    "ConnectionClosed",
    "DeadlineExceeded",
    "FrameCorrupted",
    "JobError",
    "JobRetriesExhausted",
    "Journal",
    "JournalReplay",
    "ProgramCache",
    "ProtocolError",
    "QueueClosed",
    "QueueRecovery",
    "ServerBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceFault",
    "StateStore",
    "WorkerLost",
    "WorkQueueServer",
    "replay_queue_journal",
    "serve_in_background",
]
