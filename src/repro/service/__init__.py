"""Bounds as a service: the distributed tier of the GuBPI engine.

This package turns the in-process bound engine into a small service stack,
without moving a single bound:

* :mod:`repro.service.protocol` — the shared wire format: length-prefixed
  frames carrying a JSON header plus an opaque binary blob, and the exact
  float encoding that keeps bounds bit-identical across the wire.
* :mod:`repro.service.queue` — :class:`WorkQueueServer`, the TCP work queue
  behind ``AnalysisOptions(executor="socket")``: chunk jobs referencing
  content-addressed path-table images, dispatched to connected workers with
  per-job timeout, bounded retry and requeue-on-worker-death.
* :mod:`repro.service.worker` — the worker process
  (``python -m repro.service.worker --connect host:port``) that attaches to
  a queue and runs the identical columnar chunk loop the process pool runs.
* :mod:`repro.service.server` — the asyncio bounds front end
  (``python -m repro.service.server``) serving whole posterior-bound
  queries for multiple tenants over one shared, LRU-bounded
  compiled-program cache keyed by canonical program hash.
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking client
  library (``client.bounds(program, targets)``) with streamed anytime
  partial bounds.

Trust model: frames carry pickled analysis payloads between queue and
workers, so the work-queue port must only be reachable by trusted hosts —
the same boundary as ``multiprocessing`` itself.  The bounds front end
speaks pure JSON.
"""

from .client import BoundsReply, ServiceClient
from .protocol import (
    ConnectionClosed,
    DeadlineExceeded,
    ProtocolError,
    ServerBusy,
    ServiceError,
    ServiceFault,
    WorkerLost,
)
from .queue import JobError, JobRetriesExhausted, QueueClosed, WorkQueueServer

#: Server-side exports resolve lazily: importing them eagerly would load
#: ``repro.service.server`` during ``python -m repro.service.server``
#: startup (runpy warns about the double import), and queue workers never
#: need the asyncio front end at all.
_SERVER_EXPORTS = ("BoundsServer", "ProgramCache", "serve_in_background")


def __getattr__(name: str):
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BoundsReply",
    "BoundsServer",
    "ConnectionClosed",
    "DeadlineExceeded",
    "JobError",
    "JobRetriesExhausted",
    "ProgramCache",
    "ProtocolError",
    "QueueClosed",
    "ServerBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceFault",
    "WorkerLost",
    "WorkQueueServer",
    "serve_in_background",
]
