"""The TCP work queue behind ``AnalysisOptions(executor="socket")``.

:class:`WorkQueueServer` is the parent-side half of the distributed bound
engine: it owns a listening socket, a deque of pending jobs and a registry
of content-addressed **resources** (path-table images and pickled query
contexts).  Worker processes (:mod:`repro.service.worker`) connect over
TCP; each connection gets a dedicated dispatcher thread that pulls jobs
off the queue, ships whatever resources the worker does not hold yet, and
waits for the result.

The design mirrors the shared-memory arena transport one layer out:

* a **chunk job** is the TCP analogue of an
  :class:`~repro.analysis.transport.ArenaChunkRef` — a table key plus an
  ``[start, stop)`` index range plus a context key, a few hundred bytes
  regardless of chunk size;
* **resources** are sent at most once per worker connection and cached
  worker-side in a small LRU.  The dispatcher mirrors each worker's LRU
  (same capacity, same touch order), so it knows exactly which keys the
  worker still holds and never round-trips to find out.

Failure handling is what distinguishes a work queue from a socket-shaped
pool:

* **per-job timeout** — a job that produces no result within its deadline
  is requeued *to the front* of the queue and the wedged worker's
  connection is dropped (the worker reconnects when it comes back);
* **worker death** — a connection that dies with a job in flight requeues
  that job the same way;
* **bounded retry** — every requeue counts as a spent attempt; a job that
  fails ``retries + 1`` times surfaces :class:`JobRetriesExhausted` (or
  :class:`JobError` with the worker traceback, when the worker reported a
  real exception) on its future, so a job that can never succeed fails the
  query instead of cycling forever.

Results arrive on :class:`concurrent.futures.Future` objects, so callers
(:class:`repro.analysis.parallel.ParallelAnalysisExecutor`) collect them
with the exact machinery they use for process pools — which is how socket
bounds stay **bit-identical** to serial bounds: same chunk loop in the
worker, same canonical-order reduction in the parent.

**Durability** (optional): pass ``journal_path`` and the queue keeps a
write-ahead journal (:mod:`repro.service.journal`) of resource manifests,
job enqueues, dispatches and completions.  On construction over an
existing journal the queue *replays* it — re-registering resources and
requeuing every job that was enqueued but never completed (or
permanently failed) — so a ``kill -9`` loses at most the fsync batch
tail, never the backlog.  A clean :meth:`close` marks the journal so the
next start knows pending jobs were deliberately failed, not lost.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import pathlib
import pickle
import socket
import subprocess
import sys
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import faults as _faults
from ..analysis.config import (
    DEFAULT_IO_TIMEOUT,
    DEFAULT_JOB_RETRIES,
    DEFAULT_JOB_TIMEOUT,
    parse_endpoint,
)
from .journal import Journal, JournalReplay
from .protocol import (
    ConnectionClosed,
    DeadlineExceeded,
    ProtocolError,
    WorkerLost,
    recv_frame,
    send_frame,
)

__all__ = [
    "HEARTBEAT_MISS_FACTOR",
    "JobError",
    "JobRetriesExhausted",
    "QueueClosed",
    "QueueRecovery",
    "WorkQueueServer",
    "replay_queue_journal",
]

#: How many heartbeat intervals may pass without *any* frame from a worker
#: before its connection is reaped as unresponsive.  Three intervals
#: tolerates scheduling jitter while still reaping a wedged worker in a
#: couple of seconds instead of waiting out the full job timeout.
HEARTBEAT_MISS_FACTOR = 3


class QueueClosed(RuntimeError):
    """The queue was shut down while the job was still pending."""


class JobError(RuntimeError):
    """A worker reported an exception for this job on every attempt.

    The message carries the worker-side exception type and traceback of the
    final attempt, so analyzer bugs surface with their real stack even
    though they happened in another process on (possibly) another host.
    """


class JobRetriesExhausted(WorkerLost):
    """The job timed out or lost its worker on every allowed attempt.

    A :class:`~repro.service.protocol.WorkerLost`: the failure is an
    infrastructure loss, not an analyzer error, so callers (the parallel
    executor's degradation ladder, service clients) can branch on the
    typed base class.
    """


class _WorkerUnresponsive(ConnectionClosed):
    """A heartbeating worker sent no frame for the whole liveness window."""


@dataclass
class _Job:
    """One unit of queued work and its delivery state."""

    job_id: int
    spec: dict  # wire header fields (sans type/job_id), e.g. table/start/stop
    resources: tuple[str, ...]
    timeout: Optional[float]
    retries: int
    #: Absolute ``time.monotonic()`` deadline of the *caller* — a job whose
    #: caller has already given up is failed fast instead of re-dispatched.
    deadline: Optional[float] = None
    future: concurrent.futures.Future = field(default_factory=concurrent.futures.Future)
    attempts: int = 0  # dispatches so far
    last_error: Optional[str] = None

    def fail(self, error: Exception) -> None:
        if not self.future.done():
            self.future.set_exception(error)


@dataclass
class QueueRecovery:
    """What a queue journal replays to (see :func:`replay_queue_journal`)."""

    #: key -> (kind, payload): every journaled resource manifest.
    resources: dict[str, tuple[str, bytes]] = field(default_factory=dict)
    #: Enqueue records (journal headers) to requeue, in enqueue order.
    pending: list[dict] = field(default_factory=list)
    completed: set[int] = field(default_factory=set)
    failed: set[int] = field(default_factory=set)
    #: The journal ended with a clean-shutdown marker: pending jobs were
    #: deliberately failed by close(), not lost — nothing is requeued.
    clean: bool = False
    records: int = 0
    torn: bool = False


def replay_queue_journal(replay: JournalReplay) -> QueueRecovery:
    """Fold a journal's accepted record prefix into recovery state.

    Pure and total over whatever :meth:`Journal.replay` accepted: a job is
    requeued iff its enqueue record survived and no completion, permanent
    failure or clean-shutdown marker did — so replay never resurrects a
    journaled completion and always requeues journaled-but-unfinished
    work.  (A crash inside the fsync batch window can lose *tail* records;
    that loses at most the last batch of enqueues, never reorders.)
    """
    recovery = QueueRecovery(records=len(replay.records), torn=replay.torn)
    enqueued: dict[int, dict] = {}
    for header, blob in replay.records:
        kind = header.get("type")
        recovery.clean = kind == "clean"
        if kind == "resource":
            recovery.resources[header["key"]] = (header["kind"], blob)
        elif kind == "enqueue":
            enqueued[int(header["job_id"])] = header
        elif kind == "complete":
            recovery.completed.add(int(header["job_id"]))
        elif kind == "failed":
            recovery.failed.add(int(header["job_id"]))
        elif kind == "clean":
            # Positional: close() failed everything still pending *at this
            # point*, so those jobs are resolved — records appended by a
            # later incarnation of the queue are unaffected.
            for job_id in enqueued:
                if job_id not in recovery.completed:
                    recovery.failed.add(job_id)
    recovery.pending = [
        record
        for job_id, record in sorted(enqueued.items())
        if job_id not in recovery.completed and job_id not in recovery.failed
    ]
    return recovery


class WorkQueueServer:
    """A TCP work-queue server feeding chunk jobs to remote workers.

    ``endpoint`` is a ``host:port`` string; port ``0`` binds an ephemeral
    port (the effective address is :attr:`address` / :attr:`endpoint`).
    The server starts listening immediately on construction; jobs submitted
    before any worker connects simply wait in the queue.
    """

    def __init__(
        self,
        endpoint: str = "127.0.0.1:0",
        job_timeout: Optional[float] = DEFAULT_JOB_TIMEOUT,
        job_retries: int = DEFAULT_JOB_RETRIES,
        io_timeout: float = DEFAULT_IO_TIMEOUT,
        journal_path: Optional[str] = None,
    ) -> None:
        host, port = parse_endpoint(endpoint)
        self.job_timeout = job_timeout
        self.job_retries = job_retries
        #: Socket-level patience: the handshake read timeout, and the
        #: liveness window for workers that do not heartbeat.
        self.io_timeout = io_timeout
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._jobs_available = threading.Condition(self._lock)
        self._pending: deque[_Job] = deque()
        self._resources: dict[str, tuple[str, bytes]] = {}  # key -> (kind, payload)
        self._closed = False
        self._job_ids = itertools.count()
        self._connections: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._spawned: list[subprocess.Popen] = []
        # Telemetry (under self._lock).
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_requeued = 0
        self.resources_sent = 0
        self.workers_reaped = 0
        self._running = 0
        self._workers = 0
        # Durability (optional): replay an existing journal before opening
        # it for append, so a restarted queue resumes its backlog.
        self._journal: Optional[Journal] = None
        self.journal_records_replayed = 0
        self.jobs_recovered = 0
        self.journal_clean: Optional[bool] = None
        #: job_id -> future of every job requeued from the journal, so a
        #: restarted owner can await recovered work.
        self.recovered_jobs: dict[int, concurrent.futures.Future] = {}
        if journal_path is not None:
            recovery = replay_queue_journal(Journal.replay(journal_path))
            self._journal = Journal(journal_path)  # truncates any torn tail
            self.journal_records_replayed = recovery.records
            self.journal_clean = recovery.clean
            self._resources.update(recovery.resources)
            for record in recovery.pending:
                job = _Job(
                    job_id=int(record["job_id"]),
                    spec=dict(record["spec"]),
                    resources=tuple(record.get("resources", ())),
                    timeout=record.get("timeout"),
                    retries=int(record.get("retries", self.job_retries)),
                )
                self._pending.append(job)
                self.recovered_jobs[job.job_id] = job.future
                self.jobs_submitted += 1
                self.jobs_recovered += 1
            seen_ids = (
                {int(record["job_id"]) for record in recovery.pending}
                | recovery.completed
                | recovery.failed
            )
            self._job_ids = itertools.count(max(seen_ids) + 1 if seen_ids else 0)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-queue-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        """The bound ``host:port`` (with the real port when ``:0`` was asked)."""
        host, port = self.address
        return f"{host}:{port}"

    def add_resource(self, key: str, payload: bytes, kind: str) -> None:
        """Register a content-addressed payload workers may need (idempotent).

        ``kind`` is ``"table"`` (a path-table byte image) or ``"context"``
        (a pickled ``(targets, options, specs)`` tuple).  Registering an
        already-known key is a no-op — content addressing guarantees equal
        keys mean equal bytes.
        """
        with self._lock:
            known = key in self._resources
            self._resources.setdefault(key, (kind, payload))
        if not known and self._journal is not None:
            self._journal.append({"type": "resource", "key": key, "kind": kind}, blob=payload)

    def discard_resource(self, key: str) -> None:
        """Drop a registered payload (streamed chunks retire theirs eagerly)."""
        with self._lock:
            self._resources.pop(key, None)

    def submit_chunk(
        self,
        index: int,
        table: str,
        start: int,
        stop: int,
        context: str,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        indices: Optional[Sequence[int]] = None,
        deadline: Optional[float] = None,
    ) -> concurrent.futures.Future:
        """Queue one chunk job: analyse ``table[start:stop]`` under ``context``.

        ``indices`` (optional) replaces the contiguous range with an
        explicit path-index list — the refinement scheduler's scattered
        worst-gap subsets ride the same job kind (and the same resource
        caching) as regular chunks.  ``deadline`` (optional) is the caller's
        absolute ``time.monotonic()`` deadline: a job that has not been
        dispatched by then fails with
        :class:`~repro.service.protocol.DeadlineExceeded` instead of
        occupying a worker whose result nobody will read.

        Returns a future resolving to ``(index, [PathContribution, ...])`` —
        the exact shape process-pool chunk futures resolve to.
        """
        spec = {"kind": "chunk", "index": index, "table": table, "start": start,
                "stop": stop, "context": context}
        if indices is not None:
            spec["indices"] = [int(i) for i in indices]
        return self._submit(spec, resources=(table, context), timeout=timeout,
                            retries=retries, deadline=deadline)

    def submit_sleep(
        self,
        seconds: float,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> concurrent.futures.Future:
        """Queue a job that just sleeps in the worker (timeout/retry testing)."""
        return self._submit(
            {"kind": "sleep", "seconds": seconds}, resources=(), timeout=timeout,
            retries=retries, deadline=deadline,
        )

    def _submit(
        self,
        spec: dict,
        resources: tuple[str, ...],
        timeout: Optional[float],
        retries: Optional[int],
        deadline: Optional[float] = None,
    ) -> concurrent.futures.Future:
        job = _Job(
            job_id=next(self._job_ids),
            spec=spec,
            resources=resources,
            timeout=self.job_timeout if timeout is None else timeout,
            retries=self.job_retries if retries is None else retries,
            deadline=deadline,
        )
        with self._jobs_available:
            if self._closed:
                raise QueueClosed("work queue is closed")
            for key in resources:
                if key not in self._resources:
                    raise KeyError(f"unknown resource {key!r}; add_resource it first")
            if self._journal is not None:
                # Journal *before* the job becomes visible to dispatchers,
                # so a completion record can never precede its enqueue.
                self._journal.append({
                    "type": "enqueue",
                    "job_id": job.job_id,
                    "spec": spec,
                    "resources": list(resources),
                    "timeout": job.timeout,
                    "retries": job.retries,
                })
            self.jobs_submitted += 1
            self._pending.append(job)
            self._jobs_available.notify()
        return job.future

    def spawn_local_workers(
        self,
        count: int,
        cache_cap: Optional[int] = None,
        faults: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        """Launch ``count`` worker processes connected to this queue.

        Workers run ``python -m repro.service.worker`` with the current
        interpreter and environment (so ``PYTHONPATH`` arrangements carry
        over) and are terminated by :meth:`close`.  ``faults`` sets the
        child's ``REPRO_FAULTS`` plan (the chaos suite targets *one* worker
        this way, so a surviving worker's hit counters stay clean); ``None``
        inherits the parent's environment, ``""`` explicitly clears it.
        """
        argv = [sys.executable, "-m", "repro.service.worker", "--connect", self.endpoint]
        if cache_cap is not None:
            argv += ["--cache-cap", str(cache_cap)]
        if heartbeat_interval is not None:
            argv += ["--heartbeat", str(heartbeat_interval)]
        # The parent may have ``repro`` importable through sys.path edits
        # that the environment does not reflect (pytest's ``pythonpath``
        # ini option, editable installs): pin the package root onto the
        # child's PYTHONPATH so ``-m repro.service.worker`` resolves.
        package_root = str(pathlib.Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        if package_root not in (existing or "").split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root if not existing else package_root + os.pathsep + existing
            )
        first_env = env
        if faults is not None:
            first_env = dict(env)
            if faults:
                first_env[_faults.ENV_VAR] = faults
            else:
                first_env.pop(_faults.ENV_VAR, None)
        for index in range(count):
            self._spawned.append(
                subprocess.Popen(argv, env=first_env if index == 0 else env)
            )

    def worker_count(self) -> int:
        """How many workers are currently connected."""
        with self._lock:
            return self._workers

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers are connected (or ``timeout`` passes)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.worker_count() >= count:
                return True
            time.sleep(0.01)
        return self.worker_count() >= count

    def stats(self) -> dict:
        """A snapshot of queue health (pending/running/completed/failed...)."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "running": self._running,
                "workers": self._workers,
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "requeued": self.jobs_requeued,
                "reaped": self.workers_reaped,
                "resources": len(self._resources),
                "resources_sent": self.resources_sent,
                "journal_records_replayed": self.journal_records_replayed,
                "jobs_recovered": self.jobs_recovered,
                "journal_clean": self.journal_clean,
            }

    def close(self) -> None:
        """Stop accepting work, fail pending jobs, reap workers (idempotent)."""
        with self._jobs_available:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending)
            self._pending.clear()
            self._jobs_available.notify_all()
            connections = list(self._connections)
        for job in pending:
            job.fail(QueueClosed("work queue closed with the job still pending"))
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        for conn in connections:
            try:
                send_frame(conn, {"type": "shutdown"})
            except OSError:
                pass
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for proc in self._spawned:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._spawned:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                proc.kill()
                proc.wait()
        self._spawned.clear()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._journal is not None:
            # The clean marker records that pending jobs were deliberately
            # failed above — the next start must not resurrect them.
            self._journal.close(clean=True)

    def __enter__(self) -> "WorkQueueServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"WorkQueueServer({self.endpoint!r}, {state}, workers={self.worker_count()})"

    # ------------------------------------------------------------------
    # Dispatch internals
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._connections.add(conn)
                thread = threading.Thread(
                    target=self._serve_worker, args=(conn,),
                    name="repro-queue-dispatch", daemon=True,
                )
                self._threads.append(thread)
            thread.start()

    def _next_job(self) -> Optional[_Job]:
        """Block until a job is available; ``None`` means the queue closed."""
        with self._jobs_available:
            while not self._pending and not self._closed:
                self._jobs_available.wait(timeout=0.5)
            if self._closed:
                return None
            self._running += 1
            return self._pending.popleft()

    def _requeue(self, job: _Job, reason: str) -> None:
        """Put a failed dispatch back at the queue's front, or fail the job.

        ``job.attempts`` already counts the dispatch that just failed; the
        job is allowed ``retries + 1`` dispatches in total.  Must be called
        with ``self._jobs_available`` held; the caller's ``_running`` slot
        is released here.
        """
        self._running -= 1
        if self._closed:
            self.jobs_failed += 1
            job.fail(QueueClosed("work queue closed with the job in flight"))
            return
        if job.attempts >= job.retries + 1:
            self.jobs_failed += 1
            if self._journal is not None:
                self._journal.append({"type": "failed", "job_id": job.job_id})
            if job.last_error is not None:
                job.fail(JobError(
                    f"job {job.job_id} failed on all {job.attempts} attempts; "
                    f"last worker error:\n{job.last_error}"
                ))
            else:
                job.fail(JobRetriesExhausted(
                    f"job {job.job_id} exhausted {job.attempts} attempts ({reason})"
                ))
            return
        self.jobs_requeued += 1
        # Front of the queue: a requeued job is the oldest outstanding work
        # and blocking the overall query, so it must not wait behind the
        # backlog a second time.  (No journal record: the enqueue record is
        # still live, so a crash here still replays the job.)
        self._pending.appendleft(job)
        self._jobs_available.notify()

    def _serve_worker(self, conn: socket.socket) -> None:
        """Dispatcher loop of one worker connection (runs in its own thread)."""
        sent: "OrderedDict[str, bool]" = OrderedDict()
        registered = False
        try:
            conn.settimeout(self.io_timeout)
            hello, _ = recv_frame(conn)
            if hello.get("type") != "hello":
                raise ProtocolError(f"expected hello frame, got {hello.get('type')!r}")
            cache_cap = max(1, int(hello.get("cache_cap", 8)))
            # A heartbeating worker announces its interval; liveness is a
            # few missed beats, far tighter than any job timeout.  Workers
            # that do not heartbeat (interval 0/absent) fall back to the
            # coarse io_timeout-per-read behaviour.
            heartbeat_interval = float(hello.get("heartbeat_interval", 0.0) or 0.0)
            with self._lock:
                self._workers += 1
                registered = True
            while True:
                job = self._next_job()
                if job is None:
                    return
                if job.deadline is not None and time.monotonic() >= job.deadline:
                    # The caller has already given up: fail fast rather than
                    # burn a worker computing a result nobody will read.
                    with self._jobs_available:
                        self._running -= 1
                        self.jobs_failed += 1
                    job.fail(DeadlineExceeded(
                        f"job {job.job_id} missed its caller's deadline before dispatch"
                    ))
                    continue
                job.attempts += 1
                if job.future.done():  # failed (e.g. queue close race) while queued
                    with self._jobs_available:
                        self._running -= 1
                    continue
                if self._journal is not None:
                    self._journal.append(
                        {"type": "dispatch", "job_id": job.job_id, "attempt": job.attempts}
                    )
                try:
                    self._send_job(conn, job, sent, cache_cap)
                    outcome = self._await_result(conn, job, heartbeat_interval)
                except (ConnectionClosed, ProtocolError, OSError) as error:
                    # Timeout, worker death or protocol corruption: requeue
                    # the in-flight job and drop this connection — a wedged
                    # worker's late result must not race the retry (the
                    # worker reconnects on its own when it recovers).
                    if isinstance(error, _WorkerUnresponsive):
                        reason = f"worker stopped heartbeating ({error})"
                        with self._lock:
                            self.workers_reaped += 1
                    elif isinstance(error, socket.timeout):
                        reason = f"no result within {job.timeout}s"
                    else:
                        reason = f"worker connection lost ({error})"
                    with self._jobs_available:
                        self._requeue(job, reason)
                    return
                if outcome == "ok" and self._journal is not None:
                    # Synced: a completion must never be lost to the fsync
                    # batch window, or a restart would re-run delivered work.
                    self._journal.append(
                        {"type": "complete", "job_id": job.job_id}, sync=True
                    )
                with self._jobs_available:
                    if outcome == "ok":
                        self._running -= 1
                        self.jobs_completed += 1
                    else:
                        # The worker reported a job exception but is itself
                        # healthy: requeue (bounded) and keep the connection.
                        self._requeue(job, "worker reported an error")
        except (ConnectionClosed, ProtocolError, OSError):
            return  # handshake failed or idle worker hung up
        finally:
            with self._lock:
                self._connections.discard(conn)
                if registered:
                    self._workers -= 1
            conn.close()

    def _send_job(
        self,
        conn: socket.socket,
        job: _Job,
        sent: "OrderedDict[str, bool]",
        cache_cap: int,
    ) -> None:
        """Ship missing resources, then the job frame.

        ``sent`` mirrors the worker's resource LRU: same capacity, same
        touch order (insert on receive, touch on use, evict oldest on
        overflow).  The mirror is what lets the dispatcher know — without a
        round trip — which keys the worker still holds.
        """
        for key in job.resources:
            if key in sent:
                sent.move_to_end(key)
                continue
            with self._lock:
                resource = self._resources.get(key)
            if resource is None:
                raise ProtocolError(f"resource {key!r} was discarded while a job needed it")
            kind, payload = resource
            send_frame(
                conn, {"type": "resource", "key": key, "kind": kind}, payload,
                site="queue.send.resource",
            )
            with self._lock:
                self.resources_sent += 1
            sent[key] = True
            while len(sent) > cache_cap:
                sent.popitem(last=False)
        send_frame(
            conn, {"type": "job", "job_id": job.job_id, **job.spec},
            site="queue.send.job",
        )

    def _await_result(
        self, conn: socket.socket, job: _Job, heartbeat_interval: float = 0.0
    ) -> str:
        """Wait for this job's result or error frame, policing liveness.

        Two clocks run here.  The **wall clock** is the job's own deadline:
        ``job.timeout`` seconds from now, tightened by the caller's absolute
        ``job.deadline`` — expiry raises ``socket.timeout`` so the caller
        requeues.  The **liveness clock** applies to heartbeating workers:
        each read waits at most ``heartbeat_interval * HEARTBEAT_MISS_FACTOR``
        for *any* frame, so a worker that dies mid-job is reaped within a
        few beats (:class:`_WorkerUnresponsive`) instead of holding the job
        hostage for the full timeout.  Heartbeat frames themselves are
        consumed and skipped.

        Returns ``"ok"`` (future resolved) or ``"error"`` (the worker
        reported an exception; ``job.last_error`` records it).
        """
        now = time.monotonic()
        wall_deadline: Optional[float] = None
        if job.timeout is not None:
            wall_deadline = now + job.timeout
        if job.deadline is not None:
            wall_deadline = job.deadline if wall_deadline is None else min(
                wall_deadline, job.deadline
            )
        liveness = (
            heartbeat_interval * HEARTBEAT_MISS_FACTOR if heartbeat_interval > 0 else None
        )
        while True:
            now = time.monotonic()
            remaining = None if wall_deadline is None else wall_deadline - now
            if remaining is not None and remaining <= 0:
                raise socket.timeout(f"job {job.job_id} produced no result in time")
            if liveness is not None:
                wait = liveness if remaining is None else min(liveness, remaining)
            else:
                wait = remaining  # None = block forever (no timeout, no heartbeat)
            conn.settimeout(wait)
            try:
                header, blob = recv_frame(conn)
            except socket.timeout:
                if remaining is not None and time.monotonic() >= wall_deadline:
                    raise
                raise _WorkerUnresponsive(
                    f"no frame from worker for {wait:.3f}s "
                    f"({HEARTBEAT_MISS_FACTOR} heartbeat intervals)"
                ) from None
            kind = header.get("type")
            if kind == "heartbeat":
                continue
            if kind == "result" and header.get("job_id") == job.job_id:
                job.future.set_result(pickle.loads(blob) if blob else None)
                return "ok"
            if kind == "error" and header.get("job_id") == job.job_id:
                job.last_error = f"{header.get('exc_type')}: {header.get('error')}"
                return "error"
            # Anything else is out of protocol for a worker with one job in
            # flight; frames for other job ids cannot legitimately appear.
            raise ProtocolError(f"unexpected frame {kind!r} while awaiting job {job.job_id}")
