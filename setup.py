"""Setup shim so that `pip install -e .` / `python setup.py develop` work offline.

The canonical metadata lives in pyproject.toml; this file only exists because
the execution environment has no network access and no `wheel` package, which
modern PEP 660 editable installs require.
"""
from setuptools import setup

setup()
