"""Figure 7: guaranteed bounds for the pedestrian example vs sampler output.

The flagship experiment: GuBPI-style bounds on the posterior of the
pedestrian's starting point, checked against importance sampling (which should
be consistent) and against a fixed-dimension HMC run on the truncated model
(which should violate the bounds).  The paper runs this at depth/splits that
take ~1.5 hours; the harness uses a reduced depth, which loosens the bounds
but preserves the qualitative verdict.  Both samplers run through the unified
``Model.sample`` interface on the bounded variant of the model.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import AnalysisOptions, Model
from repro.models import pedestrian_bounded_program, pedestrian_program

from bench_utils import TINY, emit, histogram_metrics, scaled

_DEPTH = scaled(5, 3)
_BUCKETS = scaled(6, 4)
_IS_SAMPLES = scaled(6_000, 1_000)


def test_fig7_pedestrian_bounds(bench_once, rng):
    model = Model(
        pedestrian_program(),
        AnalysisOptions(max_fixpoint_depth=_DEPTH, score_splits=scaled(16, 6)),
    )
    histogram = bench_once(model.histogram, 0.0, 3.0, _BUCKETS)

    sampler_model = Model(pedestrian_bounded_program())
    is_result = sampler_model.sample(_IS_SAMPLES, method="importance", rng=rng)
    is_samples = is_result.resample(_IS_SAMPLES, rng)
    is_report = histogram.validate_samples(is_samples, tolerance=0.03)

    _, hmc_values = sampler_model.sample(
        scaled(150, 60),
        method="hmc",
        rng=rng,
        trace_dimension=5,
        step_size=0.08,
        leapfrog_steps=15,
        burn_in=scaled(50, 15),
    )
    hmc_values = hmc_values[~np.isnan(hmc_values)]
    hmc_report = histogram.validate_samples(hmc_values, tolerance=0.0)

    # Fig. 1 ingredient: how different are the two sampler histograms?
    edges = histogram.edges
    is_histogram, _ = np.histogram(is_samples, bins=edges)
    hmc_histogram, _ = np.histogram(hmc_values, bins=edges)
    is_frequencies = is_histogram / max(1, is_histogram.sum())
    hmc_frequencies = hmc_histogram / max(1, hmc_histogram.sum())
    tv_distance = 0.5 * float(np.abs(is_frequencies - hmc_frequencies).sum())

    lines = [f"pedestrian guaranteed bounds (fixpoint depth {_DEPTH}, {_BUCKETS} buckets)"]
    lines.extend(histogram.summary_lines())
    lines.append(f"importance sampling consistent with the bounds: {is_report.consistent}")
    lines.append(
        f"truncated HMC consistent with the bounds: {hmc_report.consistent} "
        f"({hmc_report.violations} bucket violations at this reduced depth)"
    )
    lines.append(f"total-variation distance between the IS and HMC histograms: {tv_distance:.3f}")
    lines.append(
        "paper: at full precision (~84 min) the bounds are tight enough to rule the HMC samples "
        "out definitively; at this reduced depth the harness asserts that IS is accepted and "
        "that the two samplers disagree strongly"
    )
    emit(
        "fig7_pedestrian_bounds",
        lines,
        data={
            "fixpoint_depth": _DEPTH,
            **histogram_metrics(histogram),
            "is_consistent": is_report.consistent,
            "hmc_consistent": hmc_report.consistent,
            "tv_distance_is_vs_hmc": tv_distance,
        },
    )

    # Shape assertions (Fig. 7 at reduced scale): sound bounds that accept IS,
    # and a fixed-dimension HMC run that is either flagged outright by the
    # (strict, zero-tolerance) lower bounds or at least disagrees strongly
    # with IS — the full-precision bounds adjudicate this definitively in the paper.
    assert histogram.z_lower > 0.0
    if not TINY:
        assert is_report.consistent
        assert (not hmc_report.consistent) or tv_distance > 0.1
