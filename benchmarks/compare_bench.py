"""Compare two ``BENCH_*.json`` artifact sets and flag wall-clock regressions.

Every benchmark driver writes a machine-readable ``BENCH_<driver>.json``
record under ``benchmarks/results`` (see :func:`bench_utils.emit`).  This
script diffs two such artifact sets — typically the committed baseline
against a fresh run — and exits non-zero when any timing metric regressed by
more than the threshold::

    python benchmarks/compare_bench.py benchmarks/results /tmp/fresh-results \
        --threshold 0.25 --min-seconds 0.05

Comparison rules:

* **Timing metrics** are every numeric leaf of the ``metrics`` payload whose
  key ends in ``seconds`` or is ``time_to_first_bound`` (nested dicts/lists
  are walked; list elements are keyed by position, so drivers emitting
  per-scenario ``runs`` arrays compare scenario-by-scenario).
* A pair regresses when the candidate exceeds ``baseline × (1 + threshold)``
  **and** by at least ``--min-seconds`` absolute — sub-noise timings never
  fail a CI job.
* Records whose ``tiny`` flags differ are **skipped** (a smoke run at
  seconds-scale limits is not comparable to a full-fidelity record); the
  summary reports them so a mode mismatch is visible rather than silent.
* Drivers present on only one side are reported but are not failures
  (benchmarks are added and retired across PRs).

The output is a Markdown-ish table, suitable for ``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

__all__ = ["Regression", "compare_records", "compare_dirs", "load_records", "main"]

#: Default tolerated slowdown: candidate may be up to 25% slower.
DEFAULT_THRESHOLD = 0.25

#: Default absolute floor: a metric must regress by at least this many
#: seconds to count (filters timer noise on fast drivers and tiny mode).
DEFAULT_MIN_SECONDS = 0.05


def _is_timing_key(key: str) -> bool:
    return key.endswith("seconds") or key == "time_to_first_bound"


def timing_leaves(metrics, prefix: str = "") -> Iterator[tuple[str, float]]:
    """``(dotted.path, value)`` pairs of every timing metric in a payload."""
    if isinstance(metrics, Mapping):
        for key, value in metrics.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (Mapping, list)):
                yield from timing_leaves(value, path)
            elif _is_timing_key(str(key)) and isinstance(value, (int, float)):
                yield path, float(value)
    elif isinstance(metrics, list):
        for index, value in enumerate(metrics):
            yield from timing_leaves(value, f"{prefix}[{index}]")


def load_records(directory: pathlib.Path) -> dict[str, dict]:
    """Every ``BENCH_*.json`` in ``directory``, keyed by driver name."""
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping unreadable {path.name}: {error}", file=sys.stderr)
            continue
        records[record.get("driver", path.stem)] = record
    return records


@dataclass(frozen=True)
class Regression:
    driver: str
    metric: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        return self.candidate / self.baseline if self.baseline > 0 else float("inf")


def compare_records(
    driver: str,
    baseline: dict,
    candidate: dict,
    threshold: float,
    min_seconds: float,
) -> tuple[list[Regression], list[tuple[str, float, float]]]:
    """Regressions plus every compared ``(metric, baseline, candidate)`` pair."""
    base_timings = dict(timing_leaves(baseline.get("metrics", {})))
    cand_timings = dict(timing_leaves(candidate.get("metrics", {})))
    regressions: list[Regression] = []
    pairs: list[tuple[str, float, float]] = []
    for metric, base_value in base_timings.items():
        cand_value = cand_timings.get(metric)
        if cand_value is None:
            continue
        pairs.append((metric, base_value, cand_value))
        if cand_value > base_value * (1.0 + threshold) and cand_value - base_value >= min_seconds:
            regressions.append(Regression(driver, metric, base_value, cand_value))
    return regressions, pairs


def compare_dirs(
    baseline_dir: pathlib.Path,
    candidate_dir: pathlib.Path,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> tuple[list[Regression], list[str]]:
    """Compare two artifact directories; returns (regressions, report lines)."""
    baseline = load_records(baseline_dir)
    candidate = load_records(candidate_dir)
    lines = [
        f"## Benchmark comparison ({baseline_dir} → {candidate_dir})",
        "",
        f"threshold: +{threshold:.0%} and ≥ {min_seconds}s absolute",
        "",
        "| driver | status | compared timings | worst slowdown |",
        "|---|---|---|---|",
    ]
    regressions: list[Regression] = []
    for driver in sorted(set(baseline) | set(candidate)):
        if driver not in candidate:
            lines.append(f"| {driver} | baseline only | – | – |")
            continue
        if driver not in baseline:
            lines.append(f"| {driver} | new (no baseline) | – | – |")
            continue
        if bool(baseline[driver].get("tiny")) != bool(candidate[driver].get("tiny")):
            lines.append(f"| {driver} | skipped (tiny-mode mismatch) | – | – |")
            continue
        found, pairs = compare_records(
            driver, baseline[driver], candidate[driver], threshold, min_seconds
        )
        regressions.extend(found)
        worst = "–"
        ratios = [(cand / base, metric) for metric, base, cand in pairs if base > 0]
        if ratios:
            ratio, metric = max(ratios)
            worst = f"×{ratio:.2f} ({metric})"
        status = "REGRESSED" if found else "ok"
        lines.append(f"| {driver} | {status} | {len(pairs)} | {worst} |")
    lines.append("")
    if regressions:
        lines.append(f"**{len(regressions)} regression(s):**")
        for item in sorted(regressions, key=lambda r: -r.ratio):
            lines.append(
                f"- `{item.driver}` `{item.metric}`: "
                f"{item.baseline:.3f}s → {item.candidate:.3f}s (×{item.ratio:.2f})"
            )
    else:
        lines.append("No wall-clock regressions.")
    return regressions, lines


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="baseline artifact directory")
    parser.add_argument("candidate", type=pathlib.Path, help="candidate artifact directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="tolerated relative slowdown (0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="minimum absolute regression (seconds) to flag",
    )
    args = parser.parse_args(argv)
    for directory in (args.baseline, args.candidate):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
    regressions, lines = compare_dirs(
        args.baseline, args.candidate, args.threshold, args.min_seconds
    )
    print("\n".join(lines))
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
