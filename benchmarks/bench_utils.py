"""Shared helpers for the benchmark harness.

Previously these lived in ``benchmarks/conftest.py`` and were imported via
``from conftest import emit``, which collides with ``tests/conftest.py`` when
pytest collects both directories; benchmark modules import them explicitly
from this module instead.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
