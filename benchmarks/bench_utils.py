"""Shared helpers for the benchmark harness.

Previously these lived in ``benchmarks/conftest.py`` and were imported via
``from conftest import emit``, which collides with ``tests/conftest.py`` when
pytest collects both directories; benchmark modules import them explicitly
from this module instead.

Every driver emits two artifacts under ``benchmarks/results``:

* ``<name>.txt`` — the human-readable result block (also printed), and
* ``BENCH_<name>.json`` — machine-readable timings/bounds (written whenever
  the driver passes structured ``data`` to :func:`emit`), so the perf
  trajectory of the engine can be tracked across PRs and compared by CI.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
from typing import Iterable, Mapping, Optional, TypeVar

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: CI smoke mode: ``REPRO_BENCH_TINY=1`` shrinks every driver's workload to
#: seconds-scale limits.  Quantitative assertions that only hold at full
#: fidelity are skipped in tiny mode (the smoke run checks that every driver
#: still executes end to end, not that the paper's numbers reproduce).
TINY = os.environ.get("REPRO_BENCH_TINY", "").lower() not in ("", "0", "false", "no")

_T = TypeVar("_T")


def scaled(normal: _T, tiny: _T) -> _T:
    """``normal`` at full fidelity, ``tiny`` under ``REPRO_BENCH_TINY=1``."""
    return tiny if TINY else normal


def _jsonable(value):
    """Coerce NumPy scalars and other number-likes to plain JSON types."""
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # NumPy scalar
        return value.item()
    return float(value)


def histogram_metrics(histogram) -> dict:
    """Machine-readable bound record of one histogram (for ``BENCH_*.json``).

    The shared bucket schema of every driver that emits histogram bounds —
    keep it here so the artifact contract the CI perf-smoke job uploads stays
    consistent across drivers.
    """
    return {
        "z_lower": histogram.z_lower,
        "z_upper": histogram.z_upper,
        "buckets": [
            {"lo": bound.bucket.lo, "hi": bound.bucket.hi, "lower": bound.lower, "upper": bound.upper}
            for bound in histogram.buckets
        ],
    }


def emit(name: str, lines: Iterable[str], data: Optional[Mapping] = None) -> None:
    """Print a result block and persist it under ``benchmarks/results``.

    When ``data`` is provided the same driver result is also written as
    ``BENCH_<name>.json`` — a machine-readable record (timings, bounds,
    knobs) with a small provenance envelope, which CI uploads as an artifact
    so the engine's perf trajectory is comparable across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        record = {
            "driver": name,
            "tiny": TINY,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "metrics": _jsonable(data),
        }
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(json.dumps(record, indent=2) + "\n")
