"""Shared helpers for the benchmark harness.

Previously these lived in ``benchmarks/conftest.py`` and were imported via
``from conftest import emit``, which collides with ``tests/conftest.py`` when
pytest collects both directories; benchmark modules import them explicitly
from this module instead.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable, TypeVar

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: CI smoke mode: ``REPRO_BENCH_TINY=1`` shrinks every driver's workload to
#: seconds-scale limits.  Quantitative assertions that only hold at full
#: fidelity are skipped in tiny mode (the smoke run checks that every driver
#: still executes end to end, not that the paper's numbers reproduce).
TINY = os.environ.get("REPRO_BENCH_TINY", "").lower() not in ("", "0", "false", "no")

_T = TypeVar("_T")


def scaled(normal: _T, tiny: _T) -> _T:
    """``normal`` at full fidelity, ``tiny`` under ``REPRO_BENCH_TINY=1``."""
    return tiny if TINY else normal


def emit(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
