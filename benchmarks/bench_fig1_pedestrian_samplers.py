"""Figure 1: IS and (truncated) HMC histograms disagree on the pedestrian model.

The harness reproduces the figure's data: posterior histograms of the
pedestrian starting point from likelihood-weighted importance sampling and
from a fixed-dimension HMC run on a truncated version of the model, both run
through the unified ``Model.sample`` interface.  The asserted shape is the
paper's observation that the two samplers produce visibly different
distributions (here measured by total-variation distance of their histograms).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Model
from repro.models import pedestrian_bounded_program

from bench_utils import TINY, emit, scaled

_EDGES = np.linspace(0.0, 3.0, 13)
_IS_SAMPLES = scaled(4_000, 800)


def _histogram(values: np.ndarray) -> np.ndarray:
    counts, _ = np.histogram(values, bins=_EDGES)
    total = counts.sum()
    return counts / total if total else counts


def test_fig1_sampler_disagreement(bench_once, rng):
    model = Model(pedestrian_bounded_program())

    def run_samplers():
        is_result = model.sample(_IS_SAMPLES, method="importance", rng=rng)
        is_values = is_result.resample(_IS_SAMPLES, rng)
        _, hmc_values = model.sample(
            scaled(150, 60),
            method="hmc",
            rng=rng,
            trace_dimension=5,
            step_size=0.08,
            leapfrog_steps=15,
            burn_in=scaled(50, 15),
        )
        return is_values, hmc_values[~np.isnan(hmc_values)]

    is_values, hmc_values = bench_once(run_samplers)
    is_histogram = _histogram(is_values)
    hmc_histogram = _histogram(hmc_values)
    tv_distance = 0.5 * float(np.abs(is_histogram - hmc_histogram).sum())

    lines = [f"{'bucket':>14s} {'IS freq':>10s} {'HMC freq':>10s}"]
    for k in range(len(is_histogram)):
        lines.append(
            f"[{_EDGES[k]:5.2f},{_EDGES[k + 1]:5.2f}) {is_histogram[k]:10.4f} {hmc_histogram[k]:10.4f}"
        )
    lines.append(f"total-variation distance between the histograms: {tv_distance:.3f}")
    emit("fig1_pedestrian_samplers", lines)

    # Shape: the two inference methods clearly disagree (Fig. 1).
    assert len(hmc_values) > scaled(20, 5)
    if not TINY:
        assert tv_distance > 0.15
