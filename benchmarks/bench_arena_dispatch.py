"""Arena vs pickle process dispatch: payload bytes, dispatch time, cache tee.

The parallel bound engine's ``"pickle"`` transport re-serialises every chunk
of symbolic paths (interned, but still a full object graph) per query; the
``"arena"`` transport writes the path set once into a shared-memory arena
segment and ships only tiny index-range references per chunk, reusing the
segment across queries on the cached worker pool.  This driver measures, on
the pedestrian-walk workload:

* **per-query dispatch bytes** — the pickled chunk payload bytes of the
  pickle transport vs the pickled chunk-reference bytes of the arena
  transport (the segment itself is written once and reused), asserted
  **≥ 5× smaller**;
* **dispatch time** — interning + pickling every chunk vs encoding the
  arena (first query) vs refs-only (cached segment, every later query);
* **bit-equality** — bounds of a real 2-worker process-pool query under
  both transports, always asserted (this is the CI gate in smoke mode);
* **streamed-query cache tee** — a repeated ``stream=True`` query must be
  served from the compiled-program cache at batch-cached speed.
"""

from __future__ import annotations

import pickle
import time

from repro.analysis import (
    AnalysisOptions,
    Model,
    create_arena_segment,
    partition_paths,
    shared_memory_available,
)
from repro.analysis.parallel import ChunkPayload
from repro.analysis.transport import ArenaChunkRef, create_context_segment
from repro.intervals import Interval
from repro.models import pedestrian_program
from repro.symbolic import ExecutionLimits, encode_paths, intern_paths, symbolic_paths

from bench_utils import TINY, emit, scaled

_BYTES_DEPTH = scaled(6, 3)  # the ISSUE's reference workload: pedestrian depth 6
_QUERY_DEPTH = scaled(5, 3)  # end-to-end pool queries (analysis-heavy, keep modest)
_CHUNK_SIZE = 8
_TARGETS = (Interval(0.0, 1.0), Interval.reals())


def _measure_dispatch_bytes(records: dict) -> None:
    term = pedestrian_program()
    paths = symbolic_paths(term, ExecutionLimits(max_fixpoint_depth=_BYTES_DEPTH)).paths
    options = AnalysisOptions(max_fixpoint_depth=_BYTES_DEPTH, workers=2, chunk_size=_CHUNK_SIZE)
    chunks = partition_paths(paths, workers=2, chunk_size=_CHUNK_SIZE)

    # Pickle transport: intern against one shared memo, pickle every chunk.
    start = time.perf_counter()
    memo: dict = {}
    payloads = [
        ChunkPayload(
            index=index,
            paths=intern_paths(paths[chunk.start : chunk.stop], memo),
            targets=_TARGETS,
            options=options,
            specs=(),
        )
        for index, chunk in enumerate(chunks)
    ]
    pickle_bytes = sum(len(pickle.dumps(payload)) for payload in payloads)
    pickle_seconds = time.perf_counter() - start

    # Arena transport, first query: encode + publish the arena and context
    # segments, pickle the per-chunk refs.
    start = time.perf_counter()
    segment = create_arena_segment(paths)
    assert segment is not None, "shared memory unavailable; arena bench cannot run"
    context = create_context_segment(_TARGETS, options, ())
    assert context is not None
    refs = [
        ArenaChunkRef(
            index=index,
            segment=segment.name,
            nbytes=segment.nbytes,
            start=chunk.start,
            stop=chunk.stop,
            context=context.name,
        )
        for index, chunk in enumerate(chunks)
    ]
    ref_bytes = sum(len(pickle.dumps(ref)) for ref in refs)
    arena_first_seconds = time.perf_counter() - start

    # Arena transport, cached segments (every later query): refs only.
    start = time.perf_counter()
    cached_ref_bytes = sum(len(pickle.dumps(ref)) for ref in refs)
    arena_cached_seconds = time.perf_counter() - start
    segment_bytes = segment.nbytes
    context_bytes = context.nbytes
    segment.unlink()
    context.unlink()

    ratio = pickle_bytes / max(1, ref_bytes)
    records.update(
        {
            "depth": _BYTES_DEPTH,
            "path_count": len(paths),
            "chunk_count": len(chunks),
            "pickle_payload_bytes": pickle_bytes,
            "pickle_dispatch_seconds": pickle_seconds,
            "arena_segment_bytes": segment_bytes,
            "arena_context_bytes": context_bytes,
            "arena_ref_bytes": ref_bytes,
            "arena_first_dispatch_seconds": arena_first_seconds,
            "arena_cached_dispatch_seconds": arena_cached_seconds,
            "per_query_bytes_ratio": ratio,
        }
    )
    # The acceptance gate: per-query dispatch bytes reduced ≥ 5× vs interned
    # pickles (the arena segment is written once and amortised).
    assert ratio >= 5.0, (
        f"arena refs only ×{ratio:.1f} smaller than pickled payloads "
        f"({cached_ref_bytes} vs {pickle_bytes} bytes)"
    )


def _measure_pool_queries(records: dict, lines: list[str]) -> None:
    base_options = AnalysisOptions(
        max_fixpoint_depth=_QUERY_DEPTH, score_splits=scaled(8, 4), workers=1, executor="serial"
    )
    serial = Model(pedestrian_program(), base_options).bounds(list(_TARGETS))
    for transport in ("pickle", "arena"):
        options = base_options.with_updates(
            workers=2, executor="process", chunk_size=_CHUNK_SIZE, payload_transport=transport
        )
        with Model(pedestrian_program(), options) as model:
            start = time.perf_counter()
            first = model.bounds(list(_TARGETS))
            first_seconds = time.perf_counter() - start
            start = time.perf_counter()
            second = model.bounds(list(_TARGETS))
            second_seconds = time.perf_counter() - start
        for bounds in (first, second):
            for mine, reference in zip(bounds, serial):
                assert mine.lower == reference.lower, transport
                assert mine.upper == reference.upper, transport
        records[f"{transport}_query_seconds"] = first_seconds
        records[f"{transport}_cached_query_seconds"] = second_seconds
        lines.append(
            f"process pool ({transport}): query {first_seconds:.3f}s, "
            f"repeat {second_seconds:.3f}s | bounds bit-identical to serial"
        )


def _measure_cache_tee(records: dict, lines: list[str]) -> None:
    options = AnalysisOptions(
        max_fixpoint_depth=_QUERY_DEPTH, score_splits=scaled(8, 4), workers=1,
        executor="serial", stream=True,
    )
    batch_model = Model(pedestrian_program(), options.with_updates(stream=False))
    batch_model.bounds(list(_TARGETS))  # warm the compile cache
    start = time.perf_counter()
    batch_cached = batch_model.bounds(list(_TARGETS))
    batch_cached_seconds = time.perf_counter() - start

    stream_model = Model(pedestrian_program(), options)
    start = time.perf_counter()
    first = stream_model.bounds(list(_TARGETS))
    stream_first_seconds = time.perf_counter() - start
    assert stream_model.cache_info()["entries"] == 1, "cache tee did not populate the cache"
    start = time.perf_counter()
    second = stream_model.bounds(list(_TARGETS))
    stream_second_seconds = time.perf_counter() - start

    for bounds in (first, second):
        for mine, reference in zip(bounds, batch_cached):
            assert mine.lower == reference.lower
            assert mine.upper == reference.upper
    records.update(
        {
            "batch_cached_seconds": batch_cached_seconds,
            "stream_first_seconds": stream_first_seconds,
            "stream_second_seconds": stream_second_seconds,
        }
    )
    lines.append(
        f"cache tee: streamed query {stream_first_seconds:.3f}s populates the cache; "
        f"repeat {stream_second_seconds:.3f}s vs batch-cached {batch_cached_seconds:.3f}s"
    )
    if not TINY:
        # The tee's promise: a repeated streamed query runs at batch-cached
        # speed (same code path), within a generous noise margin.
        assert stream_second_seconds <= 2.0 * batch_cached_seconds + 0.25, (
            stream_second_seconds,
            batch_cached_seconds,
        )


def test_arena_dispatch(bench_once):
    assert shared_memory_available(), "multiprocessing.shared_memory missing on this host"
    records: dict = {}
    lines: list[str] = []

    def run_all():
        _measure_dispatch_bytes(records)
        _measure_pool_queries(records, lines)
        _measure_cache_tee(records, lines)

    bench_once(run_all)
    lines.insert(
        0,
        f"pedestrian depth={records['depth']} ({records['path_count']} paths, "
        f"{records['chunk_count']} chunks): pickled payloads "
        f"{records['pickle_payload_bytes']} B vs arena refs {records['arena_ref_bytes']} B "
        f"(×{records['per_query_bytes_ratio']:.1f} smaller per query; segment "
        f"{records['arena_segment_bytes']} B written once)",
    )
    lines.insert(
        1,
        f"dispatch time: pickle {records['pickle_dispatch_seconds']:.4f}s | arena first "
        f"{records['arena_first_dispatch_seconds']:.4f}s | arena cached "
        f"{records['arena_cached_dispatch_seconds']:.5f}s",
    )
    emit("arena_dispatch", lines, data=records)
