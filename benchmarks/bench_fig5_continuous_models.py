"""Figure 5: guaranteed bounds for non-recursive continuous models.

Four models — coinBias, max of two normals, the binary Gaussian mixture and
Neal's funnel — get histogram-shaped guaranteed bounds; importance sampling
provides the reference series the bounds must contain, and (for the GMM) a
mode-collapsed HMC run is flagged as violating them (the Fig. 5c observation).
Each model runs through one ``Model`` facade so the guaranteed-bounds
histogram and the sampler cross-checks share the program object.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AnalysisOptions, Model
from repro.inference import hmc
from repro.models import (
    binary_gmm_log_density,
    binary_gmm_program,
    coin_bias_program,
    max_of_normals_program,
    neals_funnel_program,
)

from bench_utils import TINY, emit, histogram_metrics, scaled

_BOX_OPTIONS = AnalysisOptions(splits_per_dimension=scaled(80, 16), use_linear_semantics=False)


def _summarise(name: str, histogram, extra: list[str] | None = None, **metrics) -> None:
    lines = histogram.summary_lines()
    if extra:
        lines.extend(extra)
    emit(name, lines, data={**histogram_metrics(histogram), **metrics})


def _is_reference(model, rng, count=scaled(20_000, 3_000)):
    result = model.sample(count, method="importance", rng=rng)
    return result.resample(count // 2, rng)


def test_fig5a_coin_bias(bench_once, rng):
    model = Model(coin_bias_program(), _BOX_OPTIONS)
    histogram = bench_once(model.histogram, 0.0, 1.0, 10)
    samples = _is_reference(model, rng)
    report = histogram.validate_samples(samples, tolerance=0.02)
    _summarise(
        "fig5a_coin_bias", histogram, [f"IS consistent: {report.consistent}"],
        is_consistent=report.consistent,
    )
    assert histogram.z_lower > 0
    if not TINY:
        assert report.consistent


def test_fig5b_max_of_normals(bench_once, rng):
    model = Model(max_of_normals_program(), _BOX_OPTIONS)
    histogram = bench_once(model.histogram, -3.0, 3.0, 12)
    samples = _is_reference(model, rng)
    report = histogram.validate_samples(samples, tolerance=0.02)
    _summarise(
        "fig5b_max_of_normals", histogram, [f"IS consistent: {report.consistent}"],
        is_consistent=report.consistent,
    )
    if not TINY:
        assert report.consistent
    # The posterior of max(X, Y) is right-skewed: more guaranteed mass above 0 than below.
    upper_mass_above = sum(
        upper for bound, (lower, upper) in zip(histogram.buckets, histogram.normalised_bounds())
        if bound.bucket.lo >= 0.0
    )
    lower_mass_below = sum(
        lower for bound, (lower, upper) in zip(histogram.buckets, histogram.normalised_bounds())
        if bound.bucket.hi <= 0.0
    )
    assert upper_mass_above > lower_mass_below


def test_fig5c_binary_gmm(bench_once, rng):
    model = Model(
        binary_gmm_program(observation=1.0),
        AnalysisOptions(splits_per_dimension=scaled(160, 24), use_linear_semantics=False),
    )
    histogram = bench_once(model.histogram, -3.0, 3.0, 12)
    samples = _is_reference(model, rng)
    is_report = histogram.validate_samples(samples, tolerance=0.02)

    # A mode-collapsed HMC chain (started in the positive mode, small steps).
    result = hmc(
        lambda x: binary_gmm_log_density(float(x[0]), observation=1.0),
        initial=[1.0],
        num_samples=scaled(1_500, 300),
        rng=rng,
        step_size=0.05,
        leapfrog_steps=10,
    )
    hmc_samples = result.first_coordinate()
    hmc_report = histogram.validate_samples(hmc_samples, tolerance=0.02)
    _summarise(
        "fig5c_binary_gmm",
        histogram,
        [
            f"IS consistent: {is_report.consistent}",
            f"mode-collapsed HMC consistent: {hmc_report.consistent} "
            f"({hmc_report.violations} bucket violations)",
        ],
        is_consistent=is_report.consistent,
        hmc_consistent=hmc_report.consistent,
        hmc_violations=hmc_report.violations,
    )
    if not TINY:
        assert is_report.consistent
        # Fig. 5c shape: MCMC finds only one mode, which the guaranteed bounds expose.
        assert not hmc_report.consistent


def test_fig5d_neals_funnel(bench_once, rng):
    model = Model(neals_funnel_program(), _BOX_OPTIONS)
    histogram = bench_once(model.histogram, -9.0, 9.0, 12)
    samples = _is_reference(model, rng)
    report = histogram.validate_samples(samples, tolerance=0.02)
    _summarise(
        "fig5d_neals_funnel", histogram, [f"IS consistent: {report.consistent}"],
        is_consistent=report.consistent,
    )
    if not TINY:
        assert report.consistent
    covered_lower, covered_upper = histogram.covered_mass_bounds()
    assert covered_upper >= 0.95
