"""Ablation: bound convergence with the fixpoint depth (Corollary 4.4 empirically).

For a recursive program, increasing the depth limit ``D`` of Algorithm 1 must
monotonically tighten the guaranteed bounds.  This benchmark sweeps the depth
on the geometric counter and on the pedestrian example and records the
resulting widths — the empirical counterpart of the completeness theorem.
Each model is compiled through one ``Model`` facade, so every depth runs
symbolic execution exactly once and repeated queries hit the cache.
"""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisOptions, Model
from repro.intervals import Interval
from repro.lang import builder as b
from repro.models import pedestrian_program

from bench_utils import TINY, emit, scaled


def _geometric_program():
    loop = b.fix(
        "loop",
        "count",
        b.choice(0.5, b.var("count"), b.app(b.var("loop"), b.add(b.var("count"), 1.0))),
    )
    return b.app(loop, 0.0)


def test_geometric_depth_sweep(bench_once):
    model = Model(_geometric_program())
    target = Interval(-0.5, 0.5)  # P(count = 0) = 1/2

    def sweep():
        widths = {}
        for depth in scaled((2, 4, 6, 8, 10), (2, 4, 6)):
            bounds = model.probability(target, AnalysisOptions(max_fixpoint_depth=depth))
            widths[depth] = (bounds.lower, bounds.upper)
        return widths

    widths = bench_once(sweep)
    lines = ["geometric counter, P(count = 0) = 0.5"]
    for depth, (lower, upper) in widths.items():
        lines.append(f"  depth {depth:2d}: [{lower:.5f}, {upper:.5f}] width {upper - lower:.5f}")
    emit("ablation_depth_convergence_geometric", lines)

    sorted_depths = sorted(widths)
    for shallow, deep in zip(sorted_depths, sorted_depths[1:]):
        assert (widths[deep][1] - widths[deep][0]) <= (widths[shallow][1] - widths[shallow][0]) + 1e-9
    deepest = max(widths)
    if not TINY:
        assert widths[deepest][1] - widths[deepest][0] < 0.01
    assert widths[deepest][0] <= 0.5 <= widths[deepest][1]


def test_pedestrian_depth_sweep(bench_once):
    model = Model(pedestrian_program())
    target = Interval(0.0, 1.0)

    def sweep():
        results = {}
        for depth in scaled((2, 3, 4, 5), (2, 3)):
            bounds = model.probability(
                target, AnalysisOptions(max_fixpoint_depth=depth, score_splits=scaled(16, 6))
            )
            results[depth] = (bounds.lower, bounds.upper)
        return results

    results = bench_once(sweep)
    lines = ["pedestrian example, P(start <= 1 | distance = 1.1)"]
    for depth, (lower, upper) in results.items():
        lines.append(f"  depth {depth}: [{lower:.4f}, {upper:.4f}] width {upper - lower:.4f}")
    lines.append("paper: the full-precision run (≈84 min) yields bounds tight enough to rule out HMC")
    emit("ablation_depth_convergence_pedestrian", lines)

    deepest = max(results)
    assert (results[deepest][1] - results[deepest][0]) <= (results[2][1] - results[2][0]) + 1e-9
