"""Parallel bound engine: wall-clock scaling on a path-heavy workload.

The pedestrian model in the path-explosion regime (Section 7.5) is the
canonical stress test for the per-path hot loop: at fixpoint depth ``D`` the
walk contributes ``O(2^D)`` symbolic paths, each analysed independently.
This driver runs the same histogram query through the serial engine and
through process pools of increasing size, checks that every configuration
returns **bit-identical** bounds, and reports the speedup.

A genuine wall-clock speedup is asserted only on multi-core hosts (the
engine cannot beat physics on one core); everywhere else the driver still
pins the equally important property that parallelism never changes a bound.
"""

from __future__ import annotations

import os
import time

from repro.analysis import AnalysisOptions, Model
from repro.models import pedestrian_program

from bench_utils import TINY, emit, scaled

_DEPTH = scaled(6, 3)
_BUCKETS = scaled(6, 3)
_SCORE_SPLITS = scaled(8, 4)
_MIN_SPEEDUP = 1.15


def test_parallel_scaling(bench_once):
    cores = os.cpu_count() or 1
    worker_grid = sorted({2, min(4, max(2, cores))})
    serial_options = AnalysisOptions(
        max_fixpoint_depth=_DEPTH, score_splits=_SCORE_SPLITS, workers=1, executor="serial"
    )
    model = Model(pedestrian_program(), serial_options)

    # Compile once up front so every timed run measures pure path analysis.
    model.compile()
    start = time.perf_counter()
    serial = bench_once(model.histogram, 0.0, 3.0, _BUCKETS)
    serial_seconds = time.perf_counter() - start

    lines = [
        f"pedestrian path-analysis scaling (depth {_DEPTH}, {_BUCKETS} buckets, "
        f"{model.compile(serial_options).path_count} paths, {cores} cores)",
        f"serial: {serial_seconds:.3f}s",
    ]

    speedups = {}
    worker_seconds = {}
    with model:
        for workers in worker_grid:
            options = serial_options.with_updates(workers=workers, executor="process")
            # Warm the pool so its one-off fork cost is not billed to the query.
            model.bounds([serial.buckets[0].bucket], options)
            start = time.perf_counter()
            parallel = model.histogram(0.0, 3.0, _BUCKETS, options)
            parallel_seconds = time.perf_counter() - start
            worker_seconds[workers] = parallel_seconds
            speedups[workers] = serial_seconds / max(parallel_seconds, 1e-9)
            lines.append(
                f"workers={workers} (process): {parallel_seconds:.3f}s "
                f"(speedup ×{speedups[workers]:.2f})"
            )

            assert parallel.z_lower == serial.z_lower
            assert parallel.z_upper == serial.z_upper
            for serial_bucket, parallel_bucket in zip(serial.buckets, parallel.buckets):
                assert parallel_bucket.lower == serial_bucket.lower
                assert parallel_bucket.upper == serial_bucket.upper
    lines.append("parallel bounds bit-identical to serial: True")

    if cores >= 2 and not TINY:
        # Only the full-fidelity workload amortises pool overhead enough for a
        # stable speedup measurement; the tiny smoke run (15 paths, sub-second
        # serial time) would make this assertion a noisy-neighbor lottery.
        best = max(speedups.values())
        lines.append(f"best speedup ×{best:.2f} (asserted ≥ ×{_MIN_SPEEDUP} on {cores} cores)")
        assert best >= _MIN_SPEEDUP, f"expected ≥×{_MIN_SPEEDUP} speedup on {cores} cores, got ×{best:.2f}"
    else:
        lines.append("tiny or single-core run: speedup assertion skipped, equality still enforced")

    emit(
        "parallel_scaling",
        lines,
        data={
            "fixpoint_depth": _DEPTH,
            "buckets": _BUCKETS,
            "path_count": model.compile(serial_options).path_count,
            "serial_seconds": serial_seconds,
            "parallel_seconds": {str(w): s for w, s in worker_seconds.items()},
            "speedups": {str(w): s for w, s in speedups.items()},
            "z_lower": serial.z_lower,
            "z_upper": serial.z_upper,
        },
    )
