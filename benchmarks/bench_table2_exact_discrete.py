"""Table 2: finite discrete benchmarks — GuBPI agrees with exact inference.

The paper's consistency check: on the PSI benchmarks with finite discrete
domains GuBPI computes *tight* bounds that coincide with the exact posterior.
The harness times both engines (the exact enumeration engine is the PSI
stand-in, fronted by ``Model.exact``) and asserts the agreement; it also
prints the timing columns of the paper for reference.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import Model
from repro.models import discrete_suite

from bench_utils import emit

SUITE = discrete_suite()
_rows: list[str] = []


@pytest.mark.parametrize("entry", SUITE, ids=lambda e: e.name)
def test_table2_row(entry, bench_once):
    model = Model(entry.program)
    start = time.perf_counter()
    exact = model.exact()
    exact_seconds = time.perf_counter() - start
    exact_probability = exact.probability_of(entry.query_target)

    bounds = bench_once(model.probability, entry.query_target)

    row = (
        f"{entry.name:15s} {entry.query_description:32s} exact={exact_probability:.5f} "
        f"GuBPI=[{bounds.lower:.5f}, {bounds.upper:.5f}]  "
        f"t_exact={exact_seconds * 1000:6.1f}ms  "
        f"(paper: PSI {entry.paper_time_psi:.2f}s, GuBPI {entry.paper_time_gubpi:.2f}s)"
    )
    _rows.append(row)
    emit("table2_exact_discrete", _rows)

    assert bounds.contains(exact_probability, slack=1e-6)
    assert bounds.width < 1e-6
