"""Columnar analyzer fast path vs materialised arena decode (PathTable core).

The process bound engine's arena transport ships chunks as index ranges into
a shared-memory :class:`~repro.symbolic.arena.PathTable`.  Before the
columnar core, every worker *decoded* its slice back into Python
``SymbolicPath`` objects and analysed those; with ``columnar=True`` (the
default) the box and linear analyzers sweep the table's node/CSR arrays
directly through per-attachment compiled programs — no objects, no tree
walks, and repeated queries reuse every compiled program and extracted
linear form.

This driver measures, on the ISSUE's reference workload (pedestrian walk at
fixpoint depth 6, 2-worker process pool, arena transport):

* **query wall-clock** — first query and repeat queries, materialised
  (``columnar=False``) vs columnar, for the box-grid workload
  (``analyzers=("box",)``, where the sweep dominates) and the default
  linear+box analyzer stack;
* **peak RSS** — parent + worker high-water marks per mode (the columnar
  route materialises no per-chunk path objects);
* **bit-equality** — materialised and columnar bounds are asserted
  identical in every configuration (this is the CI gate in smoke mode).

The acceptance gates (full fidelity only): the columnar fast path is
**≥ 1.3× faster** than materialised arena decode on the box-grid workload,
and the linear-default workload beats the pre-batching PR-5 baseline
(35.1 s first query on this reference host) by **≥ 5×** on warm repeat
queries — the steady state the batched LP kernels and the cross-path
geometry cache were built for — while the first (cold-cache) query must
itself beat the baseline by ≥ 1.2×.
"""

from __future__ import annotations

import resource
import time

from repro.analysis import AnalysisOptions, Model, shared_memory_available
from repro.intervals import Interval
from repro.models import pedestrian_program

from bench_utils import TINY, emit, scaled

_DEPTH = scaled(6, 3)  # the ISSUE's reference workload: pedestrian depth 6
_CHUNK_SIZE = 8
_REPEATS = 3
_TARGETS = (Interval(0.0, 1.0), Interval.reals())

#: Full-fidelity ``linear_default`` first-query seconds on the reference host
#: *before* the batched LP kernels and the cross-path geometry cache (the
#: PR-5 committed ``BENCH_columnar_core.json``).  The ≥5× gate below measures
#: against this constant rather than re-running the old code.
_LINEAR_BASELINE_PR5 = 35.1

#: The measured analyzer stacks: the box grid sweep (the columnar path's
#: home turf — exponential cell grids straight from the arrays) and the
#: default linear+box stack (polytope volumes dominate; the win is the
#: batched LP kernels plus the geometry cache that persists across chunks
#: and queries of a table attachment).  The third field is the number of
#: un-timed warm-up queries before the timed repeats: with a 2-worker pool
#: the per-attachment caches converge only once every worker has seen every
#: chunk, so the linear workload warms up first to make the repeat metric
#: the steady state rather than a race on chunk→worker assignment.
_WORKLOADS = (
    ("box_grid", ("box",), 0),
    ("linear_default", None, 2),
)


def _peak_rss_kb() -> int:
    """High-water RSS (KiB) of this process plus every finished worker."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(self_kb + children_kb)


def _run_mode(analyzers, columnar: bool, warmup: int = 0):
    options = AnalysisOptions(
        max_fixpoint_depth=_DEPTH,
        score_splits=scaled(8, 4),
        workers=2,
        executor="process",
        payload_transport="arena",
        chunk_size=_CHUNK_SIZE,
        columnar=columnar,
        analyzers=analyzers,
    )
    with Model(pedestrian_program(), options) as model:
        start = time.perf_counter()
        bounds = model.bounds(list(_TARGETS))
        first_seconds = time.perf_counter() - start
        for _ in range(warmup):
            warm_bounds = model.bounds(list(_TARGETS))
            for a, b in zip(bounds, warm_bounds):
                assert a.lower == b.lower and a.upper == b.upper
        repeats = []
        for _ in range(_REPEATS):
            start = time.perf_counter()
            repeat_bounds = model.bounds(list(_TARGETS))
            repeats.append(time.perf_counter() - start)
        for a, b in zip(bounds, repeat_bounds):
            assert a.lower == b.lower and a.upper == b.upper
    return bounds, first_seconds, min(repeats), _peak_rss_kb()


def test_columnar_core(bench_once):
    assert shared_memory_available(), "multiprocessing.shared_memory missing on this host"
    records: dict = {"depth": _DEPTH, "chunk_size": _CHUNK_SIZE, "workloads": {}}
    lines: list[str] = []

    def run_all():
        for label, analyzers, warmup in _WORKLOADS:
            # Columnar first: RUSAGE_CHILDREN high-water marks are monotone
            # across pools, so the mode expected to use *less* memory must be
            # sampled before the other inflates the watermark.
            columnar_bounds, col_first, col_repeat, col_rss = _run_mode(analyzers, True, warmup)
            materialised_bounds, mat_first, mat_repeat, mat_rss = _run_mode(analyzers, False, warmup)
            for mine, reference in zip(columnar_bounds, materialised_bounds):
                assert mine.lower == reference.lower, label
                assert mine.upper == reference.upper, label
            records["workloads"][label] = {
                "materialized_first_seconds": mat_first,
                "materialized_repeat_seconds": mat_repeat,
                "columnar_first_seconds": col_first,
                "columnar_repeat_seconds": col_repeat,
                "first_speedup": mat_first / col_first if col_first > 0 else float("inf"),
                "repeat_speedup": mat_repeat / col_repeat if col_repeat > 0 else float("inf"),
                "warmup_queries": warmup,
                "peak_rss_kb_columnar": col_rss,
                "peak_rss_kb_after_materialized": mat_rss,
            }
        linear = records["workloads"]["linear_default"]
        # The ≥5× tentpole gate compares against the committed PR-5 number
        # (same workload, same host class), not a re-run of the old code.
        linear["pr5_baseline_first"] = _LINEAR_BASELINE_PR5
        linear["speedup_vs_pr5_first"] = (
            _LINEAR_BASELINE_PR5 / linear["columnar_first_seconds"]
            if linear["columnar_first_seconds"] > 0 else float("inf")
        )
        linear["speedup_vs_pr5_warm"] = (
            _LINEAR_BASELINE_PR5 / linear["columnar_repeat_seconds"]
            if linear["columnar_repeat_seconds"] > 0 else float("inf")
        )

    bench_once(run_all)

    for label, _, _ in _WORKLOADS:
        metrics = records["workloads"][label]
        lines.append(
            f"{label}: materialised {metrics['materialized_first_seconds']:.2f}s / "
            f"repeat {metrics['materialized_repeat_seconds']:.2f}s | columnar "
            f"{metrics['columnar_first_seconds']:.2f}s / repeat "
            f"{metrics['columnar_repeat_seconds']:.2f}s | speedup "
            f"×{metrics['first_speedup']:.2f} first, ×{metrics['repeat_speedup']:.2f} repeat"
        )
        lines.append(
            f"{label}: peak RSS columnar {metrics['peak_rss_kb_columnar']} KiB "
            f"(after materialised run: {metrics['peak_rss_kb_after_materialized']} KiB); "
            "bounds bit-identical"
        )
    linear = records["workloads"]["linear_default"]
    lines.append(
        f"linear_default vs PR-5 baseline ({_LINEAR_BASELINE_PR5:.1f}s): "
        f"×{linear['speedup_vs_pr5_first']:.2f} first query, "
        f"×{linear['speedup_vs_pr5_warm']:.2f} warm repeat"
    )
    lines.insert(
        0,
        f"pedestrian depth={_DEPTH}, 2-worker process pool, arena transport, "
        f"chunk_size={_CHUNK_SIZE}",
    )
    emit("columnar_core", lines, data=records)

    if not TINY:
        # The acceptance gate: the columnar sweep beats materialised arena
        # decode by ≥ 1.3× on the box-grid workload.  Repeat queries are the
        # stable metric (the compiled programs and cell grids are warm, so
        # the delta is exactly the materialisation layer); the first query
        # must at least not regress.
        box = records["workloads"]["box_grid"]
        assert box["repeat_speedup"] >= 1.3, (
            f"columnar repeat-query speedup ×{box['repeat_speedup']:.2f} < 1.3"
        )
        assert box["first_speedup"] >= 1.0, (
            f"columnar first query slower than materialised "
            f"(×{box['first_speedup']:.2f})"
        )
        # The linear-analyzer wall gate: batched LP kernels + the cross-path
        # geometry cache must beat the pre-batching baseline ≥5× once the
        # attachment caches are warm, and ≥1.2× even on the cold first query
        # (where every volume is still a fresh Qhull call and the win is the
        # kernel + the within-query cache).
        assert linear["speedup_vs_pr5_warm"] >= 5.0, (
            f"linear_default warm-repeat speedup ×{linear['speedup_vs_pr5_warm']:.2f} "
            f"< 5.0 vs the {_LINEAR_BASELINE_PR5:.1f}s PR-5 baseline"
        )
        assert linear["speedup_vs_pr5_first"] >= 1.2, (
            f"linear_default first-query speedup ×{linear['speedup_vs_pr5_first']:.2f} "
            f"< 1.2 vs the {_LINEAR_BASELINE_PR5:.1f}s PR-5 baseline"
        )
