"""Micro-benchmarks of the linear-analyzer kernels behind the ≥5× speedup.

``bench_columnar_core.py`` gates the end-to-end ``linear_default`` speedup;
this driver isolates the three layers that produce it and pins each one's
bit-equality claim:

* **batched LP kernel** — bounding many linear objectives over one polytope
  through the prepared HiGHS model (:class:`repro.polytope.BatchPolytope`)
  vs issuing each objective as a fresh ``scipy.optimize.linprog`` call (the
  pre-batching path, still the fallback when the kernel binding is absent).
  Every batched bound is asserted bit-identical to its ``linprog`` twin;
* **cross-path geometry cache** — the pedestrian workload's paths analysed
  with one shared :class:`~repro.analysis.linear_analyzer.GeometryCache`
  vs a fresh cache per path (the pre-PR behaviour).  Bounds are asserted
  identical; the record reports the volume hit rate that repeated queries
  enjoy;
* **whole-array density liftings** — the vectorised ``uniform_pdf`` /
  ``beta_pdf`` / ``normal_pdf`` cell kernels vs the generic per-cell
  interval lifting, asserted bit-identical cell by cell.

Acceptance gates (full fidelity only): the batched LP sweep is **≥ 5×**
faster than the ``linprog`` loop, the shared geometry cache scores hits on
the reference workload, and the lifting table covers ``uniform_pdf`` and
``beta_pdf`` (the bit-equality assertions run in tiny mode too — they are
the CI smoke gate).
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.optimize import linprog

from repro.analysis import AnalysisOptions
from repro.analysis.linear_analyzer import (
    GeometryCache,
    analyze_path_linear,
    linear_analysis_applicable,
)
from repro.analysis.vectorize import _ARRAY_LIFTINGS, ScalarFallback
from repro.intervals import Interval, get_primitive
from repro.models import pedestrian_program
from repro.polytope import BatchPolytope, Polytope, kernel_available
from repro.symbolic import symbolic_paths
from repro.symbolic.execute import ExecutionLimits

from bench_utils import TINY, emit, scaled

_TARGETS = (Interval(0.0, 1.0), Interval.reals())


# ----------------------------------------------------------------------
# Layer 1: batched LP kernel vs scalar linprog loop
# ----------------------------------------------------------------------

def _make_polytopes(rng, count: int, dimension: int) -> list[Polytope]:
    """Box polytopes with a few extra slopes — the analyzer's typical shape."""
    polytopes = []
    for _ in range(count):
        box = Polytope.from_box([Interval(0.0, 1.0)] * dimension)
        extra = rng.normal(size=(3, dimension))
        rhs = rng.uniform(0.5, 2.0, size=3) * np.linalg.norm(extra, axis=1)
        polytopes.append(box.add_constraints(extra.tolist(), rhs.tolist()))
    return polytopes


def _linprog_bound(polytope: Polytope, row) -> Interval | None:
    """``Polytope.bound_linear`` as the pre-kernel fallback computes it."""
    coefficients = np.asarray(row, dtype=float)
    values = []
    for sign in (1.0, -1.0):
        result = linprog(
            sign * coefficients,
            A_ub=polytope.a,
            b_ub=polytope.b,
            bounds=[(None, None)] * polytope.dimension,
            method="highs",
        )
        if result.status == 2 or not result.success:
            return None
        values.append(float(sign * result.fun))
    lo, hi = values
    if lo > hi:
        lo, hi = hi, lo
    return Interval(lo, hi)


def _lp_section(rng, records: dict, lines: list[str]) -> None:
    dimension = 5
    polytopes = _make_polytopes(rng, scaled(12, 3), dimension)
    per_polytope = scaled(40, 8)
    rows = [
        [rng.normal(size=dimension).tolist() for _ in range(per_polytope)]
        for _ in polytopes
    ]

    start = time.perf_counter()
    scalar_bounds = [
        [_linprog_bound(polytope, row) for row in objective_rows]
        for polytope, objective_rows in zip(polytopes, rows)
    ]
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_bounds = [
        BatchPolytope(polytope).bound_rows(objective_rows)
        for polytope, objective_rows in zip(polytopes, rows)
    ]
    batched_seconds = time.perf_counter() - start

    solves = 2 * sum(len(objective_rows) for objective_rows in rows)
    mismatches = 0
    if kernel_available():
        # The foundational claim: the prepared-kernel solve returns the exact
        # floats the linprog wrapper would (the wrapper itself runs HiGHS).
        for scalar_row, batched_row in zip(scalar_bounds, batched_bounds):
            for reference, candidate in zip(scalar_row, batched_row):
                if reference is None or candidate is None:
                    mismatches += int(reference is not candidate)
                elif (reference.lo, reference.hi) != (candidate.lo, candidate.hi):
                    mismatches += 1
        assert mismatches == 0, f"{mismatches} batched LP bounds differ from linprog"

    records["lp_kernel"] = {
        "kernel_available": kernel_available(),
        "dimension": dimension,
        "lp_solves": solves,
        "scalar_linprog_seconds": scalar_seconds,
        "batched_kernel_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds if batched_seconds > 0 else float("inf"),
    }
    lines.append(
        f"LP kernel: {solves} solves, linprog {scalar_seconds:.3f}s vs batched "
        f"{batched_seconds:.3f}s (×{records['lp_kernel']['speedup']:.2f}, "
        f"kernel_available={kernel_available()}, bit-identical)"
    )


# ----------------------------------------------------------------------
# Layer 2: shared geometry cache vs fresh cache per path
# ----------------------------------------------------------------------

def _cache_section(records: dict, lines: list[str]) -> None:
    limits = ExecutionLimits(max_fixpoint_depth=scaled(5, 3))
    paths = [
        path
        for path in symbolic_paths(pedestrian_program(), limits).paths
        if linear_analysis_applicable(path)
    ]
    options = AnalysisOptions(score_splits=scaled(8, 4))
    targets = list(_TARGETS)

    start = time.perf_counter()
    fresh_results = [analyze_path_linear(path, targets, options) for path in paths]
    fresh_seconds = time.perf_counter() - start

    shared = GeometryCache()
    start = time.perf_counter()
    shared_results = [
        analyze_path_linear(path, targets, options, shared) for path in paths
    ]
    shared_seconds = time.perf_counter() - start
    # The sharing invariant: a cache hit returns the identical float64s a
    # fresh computation would, so per-path bounds cannot depend on the cache.
    assert shared_results == fresh_results, "shared geometry cache moved a bound"

    stats = shared.stats()
    volume_lookups = stats["volume_hits"] + stats["volume_misses"]
    records["geometry_cache"] = {
        "paths": len(paths),
        "fresh_cache_seconds": fresh_seconds,
        "shared_cache_seconds": shared_seconds,
        "speedup": fresh_seconds / shared_seconds if shared_seconds > 0 else float("inf"),
        "volume_hit_rate": stats["volume_hits"] / volume_lookups if volume_lookups else 0.0,
        **stats,
    }
    lines.append(
        f"geometry cache: {len(paths)} paths, fresh {fresh_seconds:.3f}s vs shared "
        f"{shared_seconds:.3f}s (×{records['geometry_cache']['speedup']:.2f}); "
        f"volume hits {stats['volume_hits']}/{volume_lookups} "
        f"({records['geometry_cache']['volume_hit_rate']:.1%}), bounds identical"
    )


# ----------------------------------------------------------------------
# Layer 3: whole-array density liftings vs the generic per-cell loop
# ----------------------------------------------------------------------

def _interval_columns(rng, count: int, low: float, high: float, point: bool = False):
    lo = rng.uniform(low, high, size=count)
    width = np.zeros(count) if point else rng.uniform(0.0, (high - low) / 4.0, size=count)
    return lo, lo + width


def _density_cases(rng, count: int):
    """Well-formed argument columns per lifted primitive (no fallback cells)."""
    u_low = _interval_columns(rng, count, -1.0, 0.0, point=True)
    u_high = _interval_columns(rng, count, 0.5, 2.0, point=True)
    b_alpha = _interval_columns(rng, count, 0.5, 3.0, point=True)
    b_beta = _interval_columns(rng, count, 0.5, 3.0, point=True)
    value = _interval_columns(rng, count, -0.5, 1.5)
    return {
        "uniform_pdf": (u_low, u_high, value),
        "beta_pdf": (b_alpha, b_beta, value),
        "normal_pdf": (
            _interval_columns(rng, count, -1.0, 1.0),
            _interval_columns(rng, count, 0.2, 2.0),
            value,
        ),
    }


def _generic_cells(op: str, args, count: int):
    """The generic per-cell lifting the array kernels replace (see
    ``repro.analysis.vectorize.evaluate_cells``)."""
    primitive = get_primitive(op)
    out_lo = np.empty(count)
    out_hi = np.empty(count)
    for cell in range(count):
        intervals = [Interval(float(alo[cell]), float(ahi[cell])) for alo, ahi in args]
        value = primitive.apply_interval(*intervals)
        if value.is_empty:
            raise ScalarFallback
        out_lo[cell] = value.lo
        out_hi[cell] = value.hi
    return out_lo, out_hi


def _density_section(rng, records: dict, lines: list[str]) -> None:
    count = scaled(20_000, 512)
    cases = _density_cases(rng, count)
    records["density_liftings"] = {"coverage": sorted(_ARRAY_LIFTINGS), "cells": count}
    for op, args in cases.items():
        kernel = _ARRAY_LIFTINGS[op]
        start = time.perf_counter()
        vec_lo, vec_hi = kernel(args, count)
        vector_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ref_lo, ref_hi = _generic_cells(op, args, count)
        generic_seconds = time.perf_counter() - start
        assert np.array_equal(vec_lo, ref_lo) and np.array_equal(vec_hi, ref_hi), (
            f"{op} array lifting diverged from the scalar interval lifting"
        )
        records["density_liftings"][op] = {
            "generic_seconds": generic_seconds,
            "vectorized_seconds": vector_seconds,
            "speedup": generic_seconds / vector_seconds if vector_seconds > 0 else float("inf"),
        }
        lines.append(
            f"{op}: {count} cells, generic {generic_seconds:.3f}s vs vectorised "
            f"{vector_seconds:.3f}s (×{records['density_liftings'][op]['speedup']:.1f}, "
            "bit-identical)"
        )


def test_linear_kernels(bench_once, rng):
    records: dict = {}
    lines: list[str] = []

    def run_all():
        _lp_section(rng, records, lines)
        _cache_section(records, lines)
        _density_section(rng, records, lines)

    bench_once(run_all)
    emit("linear_kernels", lines, data=records)

    coverage = set(records["density_liftings"]["coverage"])
    assert {"uniform_pdf", "beta_pdf", "normal_pdf"} <= coverage

    if not TINY:
        lp = records["lp_kernel"]
        if lp["kernel_available"]:
            assert lp["speedup"] >= 5.0, (
                f"batched LP kernel speedup ×{lp['speedup']:.2f} < 5.0"
            )
        cache = records["geometry_cache"]
        assert cache["volume_hits"] > 0, "shared geometry cache never hit"
        assert math.isfinite(cache["speedup"])
