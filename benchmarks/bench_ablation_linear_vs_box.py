"""Ablation: the optimised linear semantics vs plain box splitting (Section 6.4).

The paper claims that, when applicable, directly splitting the linear score
expressions (and computing exact polytope volumes) is superior to the standard
interval trace semantics that splits every sample variable.  This benchmark
quantifies both tightness and running time on the simple observation model and
on a pedestrian prefix.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import AnalysisOptions, AnalysisReport, bound_query
from repro.intervals import Interval
from repro.lang import builder as b
from repro.models import pedestrian_program

from conftest import emit

_rows: list[str] = []


def _observe_model():
    return b.let(
        "x",
        b.mul(3.0, b.sample()),
        b.seq(b.observe_normal(1.1, 0.25, b.var("x")), b.var("x")),
    )


def _run(program, target, options):
    report = AnalysisReport()
    start = time.perf_counter()
    bounds = bound_query(program, target, options, report)
    seconds = time.perf_counter() - start
    return bounds, seconds, report


@pytest.mark.parametrize("use_linear", [True, False], ids=["linear", "box"])
def test_ablation_observe_model(use_linear, bench_once):
    program = _observe_model()
    target = Interval(0.0, 1.0)
    options = AnalysisOptions(
        use_linear_semantics=use_linear, score_splits=64, splits_per_dimension=64
    )
    bounds, seconds, report = bench_once(_run, program, target, options)
    _rows.append(
        f"observe-model   {'linear' if use_linear else 'box   '}  "
        f"bounds=[{bounds.lower:.4f}, {bounds.upper:.4f}] width={bounds.width:.4f} "
        f"time={seconds:.2f}s paths(linear/box)={report.linear_paths}/{report.box_paths}"
    )
    emit("ablation_linear_vs_box", _rows)
    assert bounds.lower <= bounds.upper


def test_ablation_pedestrian_depth3(bench_once):
    program = pedestrian_program()
    target = Interval(0.0, 1.0)
    results = {}
    for use_linear in (True, False):
        options = AnalysisOptions(
            max_fixpoint_depth=3,
            use_linear_semantics=use_linear,
            score_splits=16,
            splits_per_dimension=6,
            max_boxes_per_path=4_000,
        )
        if use_linear:
            bounds, seconds, report = bench_once(_run, program, target, options)
        else:
            bounds, seconds, report = _run(program, target, options)
        results[use_linear] = (bounds, seconds)
        _rows.append(
            f"pedestrian(d=3) {'linear' if use_linear else 'box   '}  "
            f"bounds=[{bounds.lower:.4f}, {bounds.upper:.4f}] width={bounds.width:.4f} "
            f"time={seconds:.2f}s"
        )
    emit("ablation_linear_vs_box", _rows)

    linear_bounds, _ = results[True]
    box_bounds, _ = results[False]
    # Section 6.4 claim: the linear semantics is at least as tight as box splitting here.
    assert linear_bounds.width <= box_bounds.width + 1e-9
