"""Ablation: the optimised linear semantics vs plain box splitting (Section 6.4).

The paper claims that, when applicable, directly splitting the linear score
expressions (and computing exact polytope volumes) is superior to the standard
interval trace semantics that splits every sample variable.  This benchmark
quantifies both tightness and running time on the simple observation model and
on a pedestrian prefix.  Both analyzer configurations share one ``Model`` per
program, so the symbolic execution is compiled once and only the path analysis
differs between the compared runs.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import AnalysisOptions, AnalysisReport, Model
from repro.intervals import Interval
from repro.lang import builder as b
from repro.models import pedestrian_program

from bench_utils import emit, scaled

_rows: list[str] = []
_records: list[dict] = []


def _observe_model():
    return b.let(
        "x",
        b.mul(3.0, b.sample()),
        b.seq(b.observe_normal(1.1, 0.25, b.var("x")), b.var("x")),
    )


#: shared across the linear/box parametrisations so both hit one compilation
_OBSERVE = Model(_observe_model())


def _run(model, target, options):
    # Compile outside the timed region so both analyzer configurations time
    # pure path analysis — otherwise whichever runs first would also pay the
    # one-time symbolic-execution cost and the comparison would be skewed.
    model.compile(options)
    report = AnalysisReport()
    start = time.perf_counter()
    bounds = model.probability(target, options, report)
    seconds = time.perf_counter() - start
    return bounds, seconds, report


@pytest.mark.parametrize("use_linear", [True, False], ids=["linear", "box"])
def test_ablation_observe_model(use_linear, bench_once):
    target = Interval(0.0, 1.0)
    options = AnalysisOptions(
        analyzers=("linear", "box") if use_linear else ("box",),
        score_splits=scaled(64, 8),
        splits_per_dimension=scaled(64, 8),
    )
    bounds, seconds, report = bench_once(_run, _OBSERVE, target, options)
    _rows.append(
        f"observe-model   {'linear' if use_linear else 'box   '}  "
        f"bounds=[{bounds.lower:.4f}, {bounds.upper:.4f}] width={bounds.width:.4f} "
        f"time={seconds:.2f}s paths(linear/box)={report.linear_paths}/{report.box_paths}"
    )
    _records.append(
        {
            "workload": "observe-model",
            "analyzer": "linear" if use_linear else "box",
            "lower": bounds.lower,
            "upper": bounds.upper,
            "seconds": seconds,
        }
    )
    emit("ablation_linear_vs_box", _rows, data={"rows": _records})
    assert bounds.lower <= bounds.upper


def test_ablation_pedestrian_depth3(bench_once):
    model = Model(pedestrian_program())
    target = Interval(0.0, 1.0)
    results = {}
    for use_linear in (True, False):
        options = AnalysisOptions(
            max_fixpoint_depth=3,
            analyzers=("linear", "box") if use_linear else ("box",),
            score_splits=scaled(16, 6),
            splits_per_dimension=scaled(6, 3),
            max_boxes_per_path=scaled(4_000, 800),
        )
        if use_linear:
            bounds, seconds, report = bench_once(_run, model, target, options)
        else:
            bounds, seconds, report = _run(model, target, options)
        results[use_linear] = (bounds, seconds)
        _rows.append(
            f"pedestrian(d=3) {'linear' if use_linear else 'box   '}  "
            f"bounds=[{bounds.lower:.4f}, {bounds.upper:.4f}] width={bounds.width:.4f} "
            f"time={seconds:.2f}s"
        )
        _records.append(
            {
                "workload": "pedestrian-depth3",
                "analyzer": "linear" if use_linear else "box",
                "lower": bounds.lower,
                "upper": bounds.upper,
                "seconds": seconds,
            }
        )
    emit("ablation_linear_vs_box", _rows, data={"rows": _records})
    # Both configurations were served from a single symbolic execution.
    assert model.compile_count == 1

    linear_bounds, _ = results[True]
    box_bounds, _ = results[False]
    # Section 6.4 claim: the linear semantics is at least as tight as box splitting here.
    assert linear_bounds.width <= box_bounds.width + 1e-9
