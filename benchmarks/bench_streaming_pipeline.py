"""Streaming symbolic→analysis pipeline: time-to-first-bound and memory.

The batch engine materialises *all* symbolic paths before a single analyzer
runs; the streaming engine (``AnalysisOptions(stream=True)``) pipelines the
iterative explorer into the analysis phase, so the first path contributions
are available while exploration is still enumerating and the full path set is
never resident.  This driver measures, for the pedestrian walk and a
recursive geometric counter at escalating fixpoint depths:

* **total wall-clock** of a cold batch query vs a cold streamed query,
* **time-to-first-bound** (``AnalysisReport.first_result_seconds``) of the
  streamed run, asserted strictly below the batch total,
* **peak path buffer** (``AnalysisReport.peak_path_buffer``) of the streamed
  run, asserted far below the materialised path count, and
* peak RSS of the process (informational — ``ru_maxrss`` is monotone).

It always asserts **bit-equality** of streamed and batch bounds — in
``REPRO_BENCH_TINY`` smoke mode that equality check is the whole point of the
CI job; the timing assertions are reserved for full fidelity.

A second test pins the other perf claim of this PR: the vectorised
score-integration sweep (``vectorized_scores``) beats the scalar
per-combination loop on a ≥1k-combination workload, at identical bounds.
"""

from __future__ import annotations

import resource
import time

from repro.analysis import AnalysisOptions, AnalysisReport, Model
from repro.analysis.linear_analyzer import analyze_path_linear
from repro.intervals import Interval
from repro.lang import builder as b
from repro.models import pedestrian_program
from repro.symbolic import symbolic_paths

from bench_utils import TINY, emit, scaled


def _geometric_program(p_stop: float = 0.5):
    loop = b.fix(
        "loop",
        "count",
        b.choice(p_stop, b.var("count"), b.app(b.var("loop"), b.add(b.var("count"), 1.0))),
    )
    return b.app(loop, 0.0)


_SCENARIOS = [
    ("pedestrian", pedestrian_program, scaled((4, 5, 6), (3, 4)), Interval(0.0, 1.0)),
    ("geometric", _geometric_program, scaled((8, 12), (5, 6)), Interval(-0.5, 2.5)),
]
_SCORE_SPLITS = scaled(8, 4)


def _run_batch(build, depth, target):
    options = AnalysisOptions(
        max_fixpoint_depth=depth, score_splits=_SCORE_SPLITS, workers=1, executor="serial"
    )
    model = Model(build(), options)
    start = time.perf_counter()
    bounds = model.bounds([target, Interval.reals()])
    seconds = time.perf_counter() - start
    return bounds, seconds, model.compile(options).path_count


def _run_streaming(build, depth, target):
    options = AnalysisOptions(
        max_fixpoint_depth=depth,
        score_splits=_SCORE_SPLITS,
        workers=1,
        executor="serial",
        stream=True,
    )
    report = AnalysisReport()
    model = Model(build(), options)
    start = time.perf_counter()
    bounds = model.bounds([target, Interval.reals()], report=report)
    seconds = time.perf_counter() - start
    return bounds, seconds, report


def test_streaming_pipeline(bench_once):
    lines = []
    records = []

    def run_all():
        for name, build, depths, target in _SCENARIOS:
            for depth in depths:
                batch, batch_seconds, path_count = _run_batch(build, depth, target)
                streamed, stream_seconds, report = _run_streaming(build, depth, target)

                # The CI gate: streamed bounds must be bit-identical to batch.
                for batch_bound, stream_bound in zip(batch, streamed):
                    assert stream_bound.lower == batch_bound.lower, (name, depth)
                    assert stream_bound.upper == batch_bound.upper, (name, depth)

                ttfb = report.first_result_seconds
                lines.append(
                    f"{name} depth={depth} ({path_count} paths): "
                    f"batch {batch_seconds:.3f}s | streamed {stream_seconds:.3f}s, "
                    f"first bound after {ttfb:.4f}s, peak path buffer {report.peak_path_buffer} "
                    f"| bounds bit-identical"
                )
                records.append(
                    {
                        "model": name,
                        "depth": depth,
                        "path_count": path_count,
                        "batch_seconds": batch_seconds,
                        "stream_seconds": stream_seconds,
                        "time_to_first_bound": ttfb,
                        "peak_path_buffer": report.peak_path_buffer,
                        "lower": streamed[0].lower,
                        "upper": streamed[0].upper,
                        "bit_identical": True,
                    }
                )

                assert ttfb is not None
                if not TINY:
                    # Streaming delivers its first bound while batch is still
                    # exploring: strictly below the batch total.
                    assert ttfb < batch_seconds, (name, depth, ttfb, batch_seconds)
                    # Serial streaming folds path-by-path: O(1) resident paths.
                    assert report.peak_path_buffer <= 1
                    assert report.peak_path_buffer < max(2, path_count)

    bench_once(run_all)
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    lines.append(f"process peak RSS (monotone, informational): {peak_rss_kb} kB")
    emit("streaming_pipeline", lines, data={"runs": records, "peak_rss_kb": peak_rss_kb})


def test_streaming_arena_transport_bit_identical(bench_once):
    """Streamed process dispatch over the arena transport matches batch bounds.

    The streaming dispatcher publishes one short-lived shared-memory arena
    segment per chunk instead of pickling the chunk's path graph; like every
    other engine configuration, the resulting bounds must be **bit-identical**
    to a serial batch run — this is part of the CI smoke gate.
    """
    name, build, depths, target = _SCENARIOS[0]
    depth = depths[0]
    batch, _, _ = _run_batch(build, depth, target)

    def run_streamed():
        options = AnalysisOptions(
            max_fixpoint_depth=depth,
            score_splits=_SCORE_SPLITS,
            workers=2,
            executor="process",
            chunk_size=4,
            stream=True,
            payload_transport="arena",
        )
        with Model(build(), options) as model:
            return model.bounds([target, Interval.reals()])

    streamed = bench_once(run_streamed)
    for batch_bound, stream_bound in zip(batch, streamed):
        assert stream_bound.lower == batch_bound.lower, (name, depth)
        assert stream_bound.upper == batch_bound.upper, (name, depth)


def test_vectorized_integration(bench_once):
    """Vectorised score integration beats the scalar loop, at identical bounds.

    Two linear atoms under piecewise (``max(0, ·)``) scores: the product grid
    has ``score_splits²`` combinations, most carrying weight exactly zero —
    the vectorised sweep computes all weights at once and prunes zero-weight
    combinations before any constraint rows or volume computations.
    """
    splits = scaled(40, 8)
    program = b.let(
        "x",
        b.sample(),
        b.let(
            "y",
            b.sample(),
            b.seq(
                b.score(b.maximum(0.0, b.sub(b.add(b.var("x"), b.var("y")), 1.5))),
                b.seq(
                    b.score(
                        b.maximum(0.0, b.sub(b.add(b.var("x"), b.mul(2.0, b.var("y"))), 2.2))
                    ),
                    b.add(b.var("x"), b.var("y")),
                ),
            ),
        ),
    )
    path = symbolic_paths(program).paths[0]
    targets = [Interval(0.0, 1.0), Interval.reals()]

    def timed(vectorized: bool):
        options = AnalysisOptions(
            score_splits=splits, max_score_combinations=8_192, vectorized_scores=vectorized
        )
        start = time.perf_counter()
        result = analyze_path_linear(path, targets, options)
        return result, time.perf_counter() - start

    def run_both():
        scalar, scalar_seconds = timed(False)
        vectorised, vectorised_seconds = timed(True)
        assert vectorised == scalar  # bit-identical contributions
        return scalar_seconds, vectorised_seconds

    scalar_seconds, vectorised_seconds = bench_once(run_both)
    speedup = scalar_seconds / max(vectorised_seconds, 1e-9)
    lines = [
        f"score integration over {splits * splits} atom-range combinations:",
        f"scalar loop {scalar_seconds:.3f}s | vectorised sweep {vectorised_seconds:.3f}s "
        f"(speedup ×{speedup:.2f}), bounds bit-identical",
    ]
    emit(
        "vectorized_integration",
        lines,
        data={
            "combinations": splits * splits,
            "scalar_seconds": scalar_seconds,
            "vectorized_seconds": vectorised_seconds,
            "speedup": speedup,
        },
    )
    if not TINY:
        assert splits * splits >= 1_000
        assert speedup > 1.0, f"vectorised sweep slower than scalar (×{speedup:.2f})"
