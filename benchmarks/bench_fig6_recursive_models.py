"""Figure 6: guaranteed bounds for recursive models.

Exact solvers cannot handle these unbounded-recursion programs (PSI unrolls
them to a fixed depth, changing the posterior — Figs. 6a–6c); GuBPI analyses
them directly.  For every model the harness computes histogram bounds at a
reduced fixpoint depth, checks them against importance sampling, and (for the
discrete geometric example) shows how depth-truncated exact inference differs
from the unbounded program.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AnalysisOptions, Model
from repro.intervals import Interval
from repro.models import recursive_suite

from bench_utils import TINY, emit, histogram_metrics, scaled

#: per-model (fixpoint depth, score splits, box splits) — reduced for bench runtime
_BENCH_SETTINGS = {
    "cav-example-7": (10, 8, 6),
    "cav-example-5": (6, 12, 6),
    "add-uniform-with-counter": (6, 8, 6),
    "random-box-walk": (5, 8, 6),
    "growing-walk": (5, 12, 6),
    "param-estimation-recursive": (6, 12, 6),
}

if TINY:
    # Seconds-scale smoke settings: shallow fixpoints, coarse splits.
    _BENCH_SETTINGS = {name: (min(depth, 4), 4, 3) for name, (depth, _, _) in _BENCH_SETTINGS.items()}

SUITE = recursive_suite()


@pytest.mark.parametrize("entry", SUITE, ids=lambda e: e.name)
def test_fig6_model(entry, bench_once, rng):
    depth, score_splits, box_splits = _BENCH_SETTINGS[entry.name]
    options = AnalysisOptions(
        max_fixpoint_depth=depth,
        score_splits=score_splits,
        splits_per_dimension=box_splits,
        max_boxes_per_path=4_000,
    )
    model = Model(entry.program, options)
    buckets = min(entry.buckets, scaled(8, 4))
    histogram = bench_once(
        model.histogram,
        entry.histogram_low,
        entry.histogram_high,
        buckets,
    )

    is_result = model.sample(scaled(4_000, 800), method="importance", rng=rng)
    samples = is_result.resample(scaled(4_000, 800), rng)
    report = histogram.validate_samples(samples, tolerance=0.04)

    lines = [f"{entry.name}: {entry.description} (fixpoint depth {depth})"]
    lines.extend(histogram.summary_lines())
    lines.append(f"importance-sampling histogram consistent with the bounds: {report.consistent}")
    lines.append(f"paper reports a GuBPI running time of {entry.paper_seconds:.0f}s on this model")
    emit(
        f"fig6_{entry.name.replace('-', '_')}",
        lines,
        data={
            "model": entry.name,
            "fixpoint_depth": depth,
            **histogram_metrics(histogram),
            "is_consistent": report.consistent,
        },
    )

    # Shape assertions: sound, non-trivial bounds on an unbounded-recursion program.
    assert histogram.z_lower > 0.0
    assert np.isfinite(histogram.z_upper)
    if not TINY:
        assert report.consistent


def test_fig6a_truncated_exact_inference_differs(bench_once):
    """Fig. 6a/6c: unrolling the loop to a fixed depth visibly changes the result."""
    from repro.models import cav_example_7

    model = Model(cav_example_7(), AnalysisOptions(max_fixpoint_depth=scaled(12, 8)))
    truncated = bench_once(model.exact, 6, "truncate")
    # The unbounded program assigns P(count = 0) = 0.2 exactly; the truncated
    # enumeration loses the tail mass and renormalises it away.
    truncated_p0 = truncated.probability(0.0)
    missing_mass = 1.0 - truncated.normalising_constant

    bounds = model.probability(Interval(-0.5, 0.5))
    lines = [
        f"truncated exact inference (depth 6): P(count=0) = {truncated_p0:.4f}, "
        f"missing tail mass = {missing_mass:.4f}",
        f"GuBPI bounds on the unbounded program: [{bounds.lower:.4f}, {bounds.upper:.4f}] (truth 0.2)",
    ]
    emit("fig6_truncation_effect", lines)

    assert missing_mass > 0.1
    assert truncated_p0 != pytest.approx(0.2, abs=1e-3)
    assert bounds.lower <= 0.2 <= bounds.upper
    if not TINY:
        assert bounds.width < 0.2
