"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop scale:
it computes the rows/series, asserts the qualitative shape the paper reports,
and both prints the result and appends it to ``benchmarks/results/<name>.txt``
so the numbers survive the pytest capture.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20220613)


@pytest.fixture
def bench_once(benchmark):
    """Run the benchmarked callable exactly once (these are long-running analyses)."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
