"""Fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop scale:
it computes the rows/series, asserts the qualitative shape the paper reports,
and both prints the result and appends it to ``benchmarks/results/<name>.txt``
so the numbers survive the pytest capture.  Shared helpers live in
``benchmarks/bench_utils.py``.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20220613)


@pytest.fixture
def bench_once(benchmark):
    """Run the benchmarked callable exactly once (these are long-running analyses)."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
