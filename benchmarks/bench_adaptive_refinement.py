"""Adaptive gap-directed refinement vs uniform split sweeps: time-to-width.

The classic engine spends its split budget *uniformly*: doubling
``splits_per_dimension`` doubles the grid of every path, whether that path's
gap contribution is dominant or already negligible.  The
:class:`~repro.analysis.refine.RefinementScheduler` spends the same budget
*adaptively* — re-splitting only the worst-gap paths, level by level.  This
driver races the two strategies on the pedestrian walk and records the full
time-to-width curve of each:

* **uniform legs** — one plain sweep per refinement level ``L`` (split
  budgets scaled by ``2**L`` via :func:`~repro.analysis.refine.level_options`,
  exactly the budgets a refinement level uses), recording wall-clock, bound
  width and per-path contributions per leg;
* **refined curve** — one seed sweep at the base budgets, then gap-directed
  rounds until the heap drains (every path saturated against the absolute
  budget ceilings) or the round cap binds, recording cumulative wall-clock
  and width after every round.

Interpreting the widths needs one structural fact: at a finite fixpoint
depth roughly half the paths are *truncated* — probability mass still
walking, which sound bounds must count wholly against the gap (truncated
lower contributions are zero).  Each strategy's width therefore splits into
its **truncation mass** (the summed truncated-path uppers — a frontier both
strategies push down by splitting, but never below the true still-walking
mass) and its **live excess** (the summed ``upper − lower`` slack of the
non-truncated paths — pure grid-resolution error that enough splitting
drives to zero).  The full-fidelity gates compare the strategies at equal
wall-clock (uniform gets every leg that fits within the refined run's total
time) on both components:

* live excess: refined ≤ **0.5×** the best uniform leg's — the headline
  "half the removable width at equal wall-clock";
* truncation mass: refined ≤ the best uniform leg's (the frontier is never
  worse); and
* raw width: refined strictly below every uniform leg's.

Always asserted, in tiny mode too: the seed is bit-identical to the uniform
level-0 leg, every round narrows monotonically, and the final refined
bounds are contained in the seed's.
"""

from __future__ import annotations

import time

from repro.analysis import (
    AnalysisOptions,
    RefinementScheduler,
    level_options,
    reduce_contributions,
)
from repro.analysis.model import CompiledProgram
from repro.analysis.parallel import analyze_table_slice
from repro.analysis.registry import resolve_analyzers
from repro.intervals import Interval
from repro.models import pedestrian_program
from repro.symbolic import ExecutionLimits

from bench_utils import TINY, emit, scaled

_DEPTH = scaled(6, 4)
#: Deliberately coarse base budgets: the seed must leave room for the
#: refinement levels (and the uniform legs) to buy width with wall-clock.
_BASE = AnalysisOptions(
    splits_per_dimension=2,
    max_boxes_per_path=scaled(512, 64),
    score_splits=scaled(4, 2),
    workers=1,
    executor="serial",
)
#: Uniform sweep levels: split budgets ×1, ×2, … ×2**max.  The deepest leg
#: costs about as much as the whole refined run, so "equal wall-clock"
#: below compares like against like.
_UNIFORM_LEVELS = scaled((0, 1, 2, 3, 4), (0, 1))
_ROUND_CAP = scaled(32, 3)

_TARGETS = (Interval(0.0, 1.0), Interval.reals())


def _width(bounds) -> float:
    """Headline width: the ``[0, 1]`` return-probability target."""
    return bounds[0].upper - bounds[0].lower


def _contained(narrow, wide) -> bool:
    return all(
        inner.lower >= outer.lower and inner.upper <= outer.upper
        for inner, outer in zip(narrow, wide)
    )


def _decompose(contributions) -> tuple[float, float]:
    """``(truncation_mass, live_excess)`` of one strategy's headline width.

    The width is exactly their sum: truncated paths contribute their whole
    upper (lower is zeroed by the reduction), live paths their grid slack.
    """
    truncation_mass = live_excess = 0.0
    for contribution in contributions:
        lower, upper = contribution.contributions[0]
        if contribution.truncated:
            truncation_mass += upper
        else:
            live_excess += upper - lower
    return truncation_mass, live_excess


def _uniform_leg(execution, level):
    """One timed uniform sweep at ``level`` budgets, with its contributions."""
    options = level_options(_BASE, level)
    paths = execution.paths
    start = time.perf_counter()
    contributions = analyze_table_slice(
        execution.table(), 0, len(paths),
        _TARGETS, options, resolve_analyzers(options), paths=paths,
    )
    bounds = reduce_contributions(contributions, _TARGETS, None)
    seconds = time.perf_counter() - start
    truncation_mass, live_excess = _decompose(contributions)
    return {
        "scale": 1 << level,
        "seconds": seconds,
        "width": _width(bounds),
        "lower": bounds[0].lower,
        "upper": bounds[0].upper,
        "truncation_mass": truncation_mass,
        "live_excess": live_excess,
        "bounds": bounds,
    }


def test_adaptive_refinement(bench_once):
    program = CompiledProgram.compile(
        pedestrian_program(), ExecutionLimits(max_fixpoint_depth=_DEPTH)
    )
    execution = program.execution
    truncated_paths = execution.truncated_paths
    lines = [
        f"pedestrian depth={_DEPTH}: {program.path_count} paths "
        f"({truncated_paths} truncated)"
    ]
    state = {}

    def run_race():
        uniform = [_uniform_leg(execution, level) for level in _UNIFORM_LEVELS]

        scheduler = RefinementScheduler(execution, _TARGETS, _BASE)
        start = time.perf_counter()
        seed = scheduler.seed()
        curve = [
            {"round": 0, "seconds": time.perf_counter() - start, "width": _width(seed)}
        ]
        previous = seed
        drained = False
        while scheduler.rounds_run < _ROUND_CAP:
            bounds = scheduler.refine_round()
            if bounds is None:
                drained = True
                break
            # The anytime contract: every round's bounds nest in the last.
            assert _contained(bounds, previous), f"round {scheduler.rounds_run} widened"
            previous = bounds
            curve.append(
                {
                    "round": scheduler.rounds_run,
                    "seconds": time.perf_counter() - start,
                    "width": _width(bounds),
                }
            )
        state.update(
            uniform=uniform, seed=seed, curve=curve, drained=drained,
            final=previous, scheduler=scheduler,
        )

    bench_once(run_race)
    uniform, curve = state["uniform"], state["curve"]
    final, scheduler = state["final"], state["scheduler"]

    # The seed *is* the uniform level-0 sweep — bit for bit.
    for seed_bound, base_bound in zip(state["seed"], uniform[0]["bounds"]):
        assert seed_bound.lower == base_bound.lower
        assert seed_bound.upper == base_bound.upper
    assert _contained(final, state["seed"])

    refined_seconds = curve[-1]["seconds"]
    refined_width = _width(final)
    refined_truncation, refined_live = _decompose(scheduler.contributions)

    for leg in uniform:
        lines.append(
            f"uniform ×{leg['scale']:<2}: {leg['seconds']:7.2f}s  width {leg['width']:.5f}"
            f"  (truncation {leg['truncation_mass']:.5f} + live {leg['live_excess']:.5f})"
        )
    lines.append(
        f"refined    : {refined_seconds:7.2f}s  width {refined_width:.5f}"
        f"  (truncation {refined_truncation:.5f} + live {refined_live:.5f}, "
        f"{scheduler.rounds_run} rounds, {scheduler.paths_refined} path sweeps, "
        f"{'drained' if state['drained'] else 'round cap'})"
    )

    data = {
        "depth": _DEPTH,
        "path_count": program.path_count,
        "truncated_paths": truncated_paths,
        "uniform": [
            {
                key: leg[key]
                for key in (
                    "scale", "seconds", "width", "lower", "upper",
                    "truncation_mass", "live_excess",
                )
            }
            for leg in uniform
        ],
        "refined": {
            "curve": curve,
            "total_seconds": refined_seconds,
            "width": refined_width,
            "truncation_mass": refined_truncation,
            "live_excess": refined_live,
            "rounds": scheduler.rounds_run,
            "paths_refined": scheduler.paths_refined,
            "drained": state["drained"],
            "lower": final[0].lower,
            "upper": final[0].upper,
        },
    }

    ratio = None
    if not TINY:
        # Equal wall-clock: uniform may use any leg that fits within the
        # refined run's total budget (every leg does, by construction).
        eligible = [leg for leg in uniform if leg["seconds"] <= refined_seconds] or uniform
        best = min(eligible, key=lambda leg: leg["width"])
        ratio = refined_live / best["live_excess"] if best["live_excess"] > 0 else 0.0
        lines.append(
            f"live excess at equal wall-clock: refined {refined_live:.5f} vs "
            f"uniform ×{best['scale']} {best['live_excess']:.5f} (ratio {ratio:.2f})"
        )
        data["live_excess_ratio_vs_best_uniform"] = ratio

    # Emit before the quantitative gates so a failed gate still leaves the
    # machine-readable record for inspection.
    emit("adaptive_refinement", lines, data=data)

    if not TINY:
        # Raw width: refined strictly dominates every equal-or-less-time leg.
        assert refined_width < best["width"], (refined_width, best)
        # Truncation frontier: never worse than the best uniform leg's.
        assert refined_truncation <= best["truncation_mass"] + 1e-12
        # The headline: refinement halves (at least) the live resolution
        # excess at equal wall-clock.
        assert best["live_excess"] > 0
        assert ratio <= 0.5, f"refined live-excess ratio {ratio:.2f} exceeds 0.5"
