"""Table 1: probability-estimation queries — GuBPI vs the path-exploration baseline.

For every (program, query) pair of the suite the harness computes guaranteed
bounds with the GuBPI engine and with the Sankaranarayanan-et-al.-style
baseline — both through one ``Model`` per program — then prints them next to
the values the paper reports for the original tools.  The asserted shape:
GuBPI's bounds are valid (contain a Monte-Carlo estimate) and at least as
tight as the baseline's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AnalysisOptions, Model
from repro.models import probest_suite

from bench_utils import TINY, emit, scaled

SUITE = probest_suite()
_OPTIONS = AnalysisOptions(max_fixpoint_depth=scaled(12, 6), splits_per_dimension=scaled(24, 8))
_BASELINE_PATH_BUDGET = 6
_collected_rows: list[str] = []


@pytest.mark.parametrize("entry", SUITE, ids=lambda e: e.identifier)
def test_table1_row(entry, bench_once, rng):
    model = Model(entry.program, _OPTIONS)
    bounds = bench_once(model.probability, entry.target)
    try:
        baseline = model.estimate(entry.target, path_budget=_BASELINE_PATH_BUDGET)
        baseline_text = f"[{baseline.lower:.4f}, {baseline.upper:.4f}]"
        baseline_width = baseline.width
    except Exception as error:
        baseline_text = f"n/a ({type(error).__name__})"
        baseline_width = float("inf")

    # Monte-Carlo sanity estimate of the query probability.
    estimate = model.sample(scaled(3_000, 800), method="importance", rng=rng).estimate_probability(entry.target)

    row = (
        f"{entry.identifier:20s} ours=[{bounds.lower:.4f}, {bounds.upper:.4f}]"
        f"  baseline={baseline_text:22s}"
        f"  paper GuBPI=[{entry.paper_gubpi[0]:.4f}, {entry.paper_gubpi[1]:.4f}]"
        f"  paper [56]=[{entry.paper_tool56[0]:.4f}, {entry.paper_tool56[1]:.4f}]"
        f"  MC~{estimate:.4f}"
    )
    _collected_rows.append(row)
    emit("table1_probability_estimation", _collected_rows)

    # Shape assertions: sound bounds that are (essentially) at least as tight
    # as the baseline's.  The small slack covers non-linear programs where the
    # box-splitting normalisation is coarser than the baseline's score-free
    # path volumes.
    assert bounds.lower <= bounds.upper
    assert bounds.lower - 0.03 <= estimate <= bounds.upper + 0.03
    if not TINY:
        assert bounds.upper - bounds.lower <= baseline_width + 0.11
