"""Bounds-as-a-service throughput: cold vs cache-hit queries, TTFB over wire.

The asyncio bounds front end (:mod:`repro.service.server`) serves whole
posterior-bound queries over a shared LRU compiled-program cache keyed by
canonical program hash.  This driver spins up an in-process server
(:func:`serve_in_background`) plus a :class:`ServiceClient` and measures,
for an exponentially branchy SPCF program:

* **cold query latency** — first request for the program: parse + symbolic
  execution + analysis, a program-cache miss,
* **cache-hit throughput** — repeated requests for a *respelled* but
  semantically identical program: the canonical program hash maps them to
  the same cached entry, and the whole-query result cache answers without
  re-running the analyzers — queries/sec rather than seconds/query,
* **time-to-first-bound over the wire** — a streamed cold query on a fresh
  program: wall-clock until the first anytime partial frame reaches the
  client, asserted strictly below the total round-trip at full fidelity,
* **distributed execution** — the same query through
  ``executor="socket"`` (the TCP work queue spawning real worker
  processes), asserted bit-identical.

Every scenario asserts **bit-equality** against a local in-process serial
``Model`` run — the service contract is "the same floats, over TCP".  In
``REPRO_BENCH_TINY`` smoke mode the equality checks are the whole point;
the timing assertions are reserved for full fidelity.
"""

from __future__ import annotations

import time

from repro.analysis import AnalysisOptions, Model
from repro.intervals import Interval
from repro.service import ServiceClient, serve_in_background

from bench_utils import TINY, emit, scaled

#: Levels of sample-and-branch nesting: each level splits every symbolic
#: path in two, so ``depth`` levels give ``2**depth`` paths (and
#: ``depth``-dimensional polytopes per path — the analyzer cost).
_DEPTH = scaled(6, 4)
_HIT_QUERIES = scaled(25, 5)
_TARGETS = (Interval(0.0, 2.0), Interval(2.0, 6.0))
_SCORE_SPLITS = scaled(8, 4)


def _branchy_source(depth: int, pivot: float = 0.5) -> str:
    """SPCF source with ``2**depth`` symbolic paths and linear source size.

    ``pivot`` is the branch threshold constant; distinct pivots give
    genuinely distinct programs (distinct canonical hashes), which the
    cold/streamed/socket scenarios use to guarantee program-cache misses.
    """
    body = "(+ " + " (+ ".join(f"b{i}" for i in range(depth - 1))
    body += f" b{depth - 1}" + ")" * (depth - 1)
    for level in reversed(range(depth)):
        body = (
            f"(let x{level} (sample uniform 0 1) "
            f"(let b{level} (if (- x{level} {pivot!r}) x{level} (- 1.0 x{level})) "
            f"{body}))"
        )
    return body


def _local_bounds(source: str) -> list:
    options = AnalysisOptions(
        score_splits=_SCORE_SPLITS, workers=1, executor="serial"
    )
    return Model.parse(source, options).bounds(list(_TARGETS))


def _assert_bit_identical(reply_bounds, local) -> None:
    assert len(reply_bounds) == len(local)
    for wire, ours in zip(reply_bounds, local):
        assert wire.lower == ours.lower, (wire, ours)
        assert wire.upper == ours.upper, (wire, ours)


def test_service_throughput(bench_once):
    source = _branchy_source(_DEPTH)
    # Same canonical program, different source text: whitespace respelling
    # parses to the identical AST, so these queries must be cache hits.
    respelled = "  " + source.replace(" (let", "  (let")
    streamed_source = _branchy_source(_DEPTH, pivot=0.375)
    socket_source = _branchy_source(_DEPTH, pivot=0.625)
    options = {"score_splits": _SCORE_SPLITS, "workers": 1, "executor": "serial"}
    local = _local_bounds(source)
    local_streamed = _local_bounds(streamed_source)
    local_socket = _local_bounds(socket_source)

    lines = []
    record = {}

    def run_all():
        with serve_in_background("127.0.0.1:0") as server:
            with ServiceClient(server.endpoint) as client:
                # --- cold query: program-cache miss, full pipeline -------
                start = time.perf_counter()
                cold = client.bounds(source, _TARGETS, options=options)
                cold_seconds = time.perf_counter() - start
                assert not cold.cache_hit
                _assert_bit_identical(cold.bounds, local)

                # --- cache hits: respelled source, same canonical hash ---
                # Same program hash + targets + options → served from the
                # whole-query result cache, no analyzer re-run.
                start = time.perf_counter()
                for _ in range(_HIT_QUERIES):
                    hit = client.bounds(respelled, _TARGETS, options=options)
                    assert hit.cache_hit
                    assert hit.result_cache == "hit"
                    assert hit.program_hash == cold.program_hash
                    _assert_bit_identical(hit.bounds, local)
                hit_total = time.perf_counter() - start
                hit_avg_seconds = hit_total / _HIT_QUERIES

                # --- streamed cold query: anytime partials over the wire -
                arrivals = []
                stream_start = time.perf_counter()
                streamed = client.bounds(
                    streamed_source,
                    _TARGETS,
                    options=options,
                    stream=True,
                    on_partial=lambda bounds, done: arrivals.append(
                        time.perf_counter() - stream_start
                    ),
                )
                stream_seconds = time.perf_counter() - stream_start
                assert not streamed.cache_hit
                _assert_bit_identical(streamed.bounds, local_streamed)
                assert arrivals, "streamed cold query emitted no partial"
                time_to_first_bound = arrivals[0]

                # --- distributed execution through the socket queue ------
                socket_options = dict(
                    options, executor="socket", workers=2, socket_spawn_workers=2
                )
                start = time.perf_counter()
                distributed = client.bounds(
                    socket_source, _TARGETS, options=socket_options
                )
                socket_seconds = time.perf_counter() - start
                _assert_bit_identical(distributed.bounds, local_socket)

                all_stats = client.stats()
                stats = all_stats.get("cache", {})
                result_stats = all_stats.get("results", {})

        lines.append(
            f"program: 2**{_DEPTH} = {cold.paths} paths, "
            f"{len(_TARGETS)} targets, score_splits={_SCORE_SPLITS}"
        )
        lines.append(
            f"cold query        {cold_seconds:8.3f}s   "
            f"({1.0 / cold_seconds:8.2f} q/s)  cache=miss"
        )
        lines.append(
            f"cache-hit query   {hit_avg_seconds:8.3f}s   "
            f"({1.0 / hit_avg_seconds:8.2f} q/s)  cache=hit x{_HIT_QUERIES}"
        )
        lines.append(
            f"streamed cold     {stream_seconds:8.3f}s   "
            f"first bound at {time_to_first_bound:.3f}s "
            f"({len(streamed.partials)} partial frame(s))"
        )
        lines.append(f"socket executor   {socket_seconds:8.3f}s   (2 workers over TCP)")
        lines.append(
            "program cache: "
            f"hits={stats.get('hits')} misses={stats.get('misses')} "
            f"entries={stats.get('entries')}  |  result cache: "
            f"hits={result_stats.get('hits')} misses={result_stats.get('misses')}"
        )
        lines.append("bounds: bit-identical to local serial execution in all modes")

        record.update(
            {
                "depth": _DEPTH,
                "paths": cold.paths,
                "hit_queries": _HIT_QUERIES,
                "cold_seconds": cold_seconds,
                "hit_avg_seconds": hit_avg_seconds,
                "queries_per_second_cold": 1.0 / cold_seconds,
                "queries_per_second_hit": 1.0 / hit_avg_seconds,
                "stream_total_seconds": stream_seconds,
                "time_to_first_bound": time_to_first_bound,
                "socket_seconds": socket_seconds,
                "partial_frames": len(streamed.partials),
                "cache": {
                    "hits": stats.get("hits"),
                    "misses": stats.get("misses"),
                    "entries": stats.get("entries"),
                },
                "result_cache": {
                    "hits": result_stats.get("hits"),
                    "misses": result_stats.get("misses"),
                },
                "bounds": [
                    {"lower": bound.lower, "upper": bound.upper} for bound in local
                ],
            }
        )

        if not TINY:
            # The service claims, pinned at full fidelity: a repeated
            # query is served from the result cache at a fraction of the
            # cold latency, and streaming beats waiting for the total.
            assert hit_avg_seconds < cold_seconds / 10, (hit_avg_seconds, cold_seconds)
            assert time_to_first_bound < stream_seconds, (
                time_to_first_bound,
                stream_seconds,
            )

    bench_once(run_all)
    emit("service_throughput", lines, record)
