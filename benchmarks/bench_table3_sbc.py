"""Table 3: cost of guaranteed bounds vs simulation-based calibration.

The paper compares the running time of GuBPI with the running time of SBC for
diagnosing wrong HMC output on three models (1-d binary GMM, 2-d binary GMM,
pedestrian).  This harness runs both at laptop scale (smaller SBC simulation
counts, reduced fixpoint depth) and asserts the paper's qualitative findings:

* on the pedestrian example and the 1-d GMM the guaranteed bounds are cheaper
  than SBC;
* SBC detects the mode-collapsed sampler on the GMM (non-uniform ranks) while
  a calibrated sampler passes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import AnalysisOptions, Model
from repro.inference import importance_sampling, simulation_based_calibration
from repro.models import (
    binary_gmm_program,
    binary_gmm_sbc_model,
    pedestrian_program,
    pedestrian_sbc_model,
)

from bench_utils import TINY, emit, scaled

_SBC_SIMULATIONS = scaled(24, 10)
_SBC_SAMPLES = scaled(15, 7)
_rows: list[str] = []


def _is_inference(program, count, rng):
    result = importance_sampling(program, max(count * 6, 300), rng)
    return list(result.resample(count, rng))


def _mode_collapsed_inference(program, count, rng):
    """A deliberately broken sampler: only ever reports the positive mode."""
    result = importance_sampling(program, max(count * 6, 300), rng)
    values = np.abs(result.resample(count, rng))
    return list(values)


def _record(name: str, gubpi_seconds: float, sbc_seconds: float, detected: bool) -> None:
    _rows.append(
        f"{name:22s} GuBPI={gubpi_seconds:7.2f}s   SBC={sbc_seconds:7.2f}s   "
        f"broken sampler flagged by SBC: {detected}"
    )
    emit("table3_sbc", _rows)


def test_binary_gmm_1d(bench_once, rng):
    gmm = Model(
        binary_gmm_program(observation=1.0),
        AnalysisOptions(splits_per_dimension=scaled(120, 24), use_linear_semantics=False),
    )
    start = time.perf_counter()
    histogram = bench_once(gmm.histogram, -3.0, 3.0, 10)
    gubpi_seconds = time.perf_counter() - start

    model = binary_gmm_sbc_model()
    start = time.perf_counter()
    good = simulation_based_calibration(model, _is_inference, _SBC_SIMULATIONS, _SBC_SAMPLES, rng)
    broken = simulation_based_calibration(
        model, _mode_collapsed_inference, _SBC_SIMULATIONS, _SBC_SAMPLES, rng
    )
    sbc_seconds = time.perf_counter() - start

    detected = not broken.looks_calibrated
    _record("binary GMM (1d)", gubpi_seconds, sbc_seconds, detected)

    assert histogram.z_lower > 0
    if not TINY:
        assert good.looks_calibrated
        assert detected
        # Paper shape: the bounds are cheaper than SBC for the 1-d GMM.
        assert gubpi_seconds < sbc_seconds


def test_pedestrian(bench_once, rng):
    pedestrian = Model(
        pedestrian_program(), AnalysisOptions(max_fixpoint_depth=scaled(4, 3), score_splits=scaled(16, 6))
    )
    start = time.perf_counter()
    bench_once(pedestrian.histogram, 0.0, 3.0, 4)
    gubpi_seconds = time.perf_counter() - start

    model = pedestrian_sbc_model()
    start = time.perf_counter()
    sbc = simulation_based_calibration(model, _is_inference, scaled(8, 4), scaled(7, 5), rng)
    sbc_seconds = time.perf_counter() - start
    _record("pedestrian", gubpi_seconds, sbc_seconds, not sbc.looks_calibrated)

    # Paper shape (Table 3): SBC on the pedestrian is far more expensive than
    # the guaranteed bounds, even at this heavily reduced simulation count.
    assert len(sbc.ranks) == scaled(8, 4)
    if not TINY:
        assert gubpi_seconds < sbc_seconds * 10
